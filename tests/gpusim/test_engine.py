"""Tests for the discrete-event engine: clock, ordering, events, deadlock."""

import pytest

from repro.errors import DeadlockError
from repro.gpusim import Device, SimEngine, GTX1660_SUPER
from repro.gpusim.ops import (
    KernelOp,
    KernelResourceRequest,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.stream import SimEvent
from repro.gpusim.timeline import IntervalKind


def kernel(flops=3.8e9, threads=1 << 20, label="k", dram=0.0, fn=None):
    """A kernel lasting ~1 ms on the GTX 1660 at full occupancy."""
    return KernelOp(
        label=label,
        resources=KernelResourceRequest(
            flops=flops,
            fp64=False,
            dram_bytes=dram,
            l2_bytes=0.0,
            instructions=0.0,
            threads_total=threads,
        ),
        compute_fn=fn,
    )


def htod(nbytes, label="t", fn=None):
    return TransferOp(
        label=label,
        direction=TransferDirection.HOST_TO_DEVICE,
        nbytes=nbytes,
        apply_fn=fn,
    )


@pytest.fixture
def engine():
    return SimEngine(Device(GTX1660_SUPER))


class TestBasicExecution:
    def test_clock_starts_at_zero(self, engine):
        assert engine.clock == 0.0
        assert engine.idle

    def test_single_kernel_duration(self, engine):
        k = kernel()
        engine.submit(engine.default_stream, k)
        engine.sync_all()
        assert engine.clock == pytest.approx(1e-3, rel=1e-6)
        assert k.end_time == pytest.approx(1e-3, rel=1e-6)

    def test_single_transfer_duration(self, engine):
        t = htod(11e6)  # 1 ms at 11 GB/s
        engine.submit(engine.default_stream, t)
        engine.sync_all()
        assert engine.clock == pytest.approx(1e-3, rel=1e-6)

    def test_fifo_order_within_stream(self, engine):
        a, b = kernel(label="a"), kernel(label="b")
        engine.submit(engine.default_stream, a)
        engine.submit(engine.default_stream, b)
        engine.sync_all()
        assert a.end_time <= b.start_time
        assert engine.clock == pytest.approx(2e-3, rel=1e-6)

    def test_two_streams_overlap(self, engine):
        s1, s2 = engine.create_stream(), engine.create_stream()
        # Each kernel demands half the device: true space-sharing.
        half = GTX1660_SUPER.max_resident_threads // 2
        a = kernel(flops=1.9e9, threads=half, label="a")
        b = kernel(flops=1.9e9, threads=half, label="b")
        engine.submit(s1, a)
        engine.submit(s2, b)
        engine.sync_all()
        # Both run concurrently at full speed -> total 1 ms, not 2.
        assert engine.clock == pytest.approx(1e-3, rel=1e-6)

    def test_transfer_overlaps_kernel(self, engine):
        s1, s2 = engine.create_stream(), engine.create_stream()
        engine.submit(s1, kernel(label="k"))
        engine.submit(s2, htod(11e6, label="t"))
        engine.sync_all()
        assert engine.clock == pytest.approx(1e-3, rel=1e-6)

    def test_compute_fn_called_on_completion(self, engine):
        calls = []
        k = kernel(fn=lambda: calls.append("k"))
        t = htod(1e6, fn=lambda: calls.append("t"))
        engine.submit(engine.default_stream, t)
        engine.submit(engine.default_stream, k)
        engine.sync_all()
        assert calls == ["t", "k"]

    def test_on_complete_callbacks(self, engine):
        seen = []
        k = kernel()
        k.on_complete.append(lambda op: seen.append(op.label))
        engine.submit(engine.default_stream, k)
        engine.sync_all()
        assert seen == ["k"]


class TestEvents:
    def test_event_orders_across_streams(self, engine):
        s1, s2 = engine.create_stream(), engine.create_stream()
        a = kernel(label="a")
        b = kernel(label="b")
        engine.submit(s1, a)
        ev = engine.record_event(s1)
        engine.wait_event(s2, ev)
        engine.submit(s2, b)
        engine.sync_all()
        assert b.start_time >= a.end_time
        assert engine.clock == pytest.approx(2e-3, rel=1e-6)

    def test_sync_event_blocks_until_recorded(self, engine):
        a = kernel(label="a")
        engine.submit(engine.default_stream, a)
        ev = engine.record_event(engine.default_stream)
        engine.sync_event(ev)
        assert ev.complete
        assert engine.clock == pytest.approx(1e-3, rel=1e-6)

    def test_sync_event_does_not_drain_other_streams(self, engine):
        s1, s2 = engine.create_stream(), engine.create_stream()
        a = kernel(label="a")
        b = kernel(label="b", flops=38e9)  # 10 ms
        engine.submit(s1, a)
        engine.submit(s2, b)
        ev = engine.record_event(s1)
        engine.sync_event(ev)
        # a finished; b may still be running in virtual time.
        assert a.end_time <= engine.clock
        assert engine.clock < 10e-3

    def test_wait_on_never_recorded_event_deadlocks(self, engine):
        ev = SimEvent("never")
        engine.wait_event(engine.default_stream, ev)
        engine.submit(engine.default_stream, kernel())
        with pytest.raises(DeadlockError):
            engine.sync_all()

    def test_cross_wait_cycle_deadlocks(self, engine):
        s1, s2 = engine.create_stream(), engine.create_stream()
        ev1, ev2 = SimEvent("e1"), SimEvent("e2")
        engine.wait_event(s1, ev2)
        engine.record_event(s1, ev1)
        engine.wait_event(s2, ev1)
        engine.record_event(s2, ev2)
        with pytest.raises(DeadlockError):
            engine.sync_all()


class TestStreamSync:
    def test_sync_stream_only_waits_for_that_stream(self, engine):
        s1, s2 = engine.create_stream(), engine.create_stream()
        a = kernel(label="a")
        b = kernel(label="b", flops=38e9)
        engine.submit(s1, a)
        engine.submit(s2, b)
        engine.sync_stream(s1)
        assert not s1.busy
        assert s2.busy  # b still queued/running

    def test_sync_all_drains_everything(self, engine):
        for _ in range(3):
            s = engine.create_stream()
            engine.submit(s, kernel())
        engine.sync_all()
        assert engine.idle


class TestHostTime:
    def test_charge_host_time_advances_clock(self, engine):
        engine.charge_host_time(5e-6)
        assert engine.clock == pytest.approx(5e-6)

    def test_device_progresses_during_host_time(self, engine):
        k = kernel()  # 1 ms
        engine.submit(engine.default_stream, k)
        engine.charge_host_time(2e-3)
        assert engine.clock == pytest.approx(2e-3)
        assert k.end_time == pytest.approx(1e-3, rel=1e-6)
        assert engine.idle

    def test_negative_host_time_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.charge_host_time(-1.0)


class TestTimelineRecording:
    def test_records_have_kinds(self, engine):
        engine.submit(engine.default_stream, htod(1e6, label="in"))
        engine.submit(engine.default_stream, kernel(label="k"))
        engine.sync_all()
        kinds = [r.kind for r in engine.timeline]
        assert IntervalKind.TRANSFER_HTOD in kinds
        assert IntervalKind.KERNEL in kinds

    def test_makespan_equals_clock_for_busy_device(self, engine):
        engine.submit(engine.default_stream, kernel())
        engine.sync_all()
        assert engine.timeline.makespan == pytest.approx(
            engine.clock, rel=1e-6
        )

    def test_kernel_record_carries_resources(self, engine):
        k = kernel()
        engine.submit(engine.default_stream, k)
        engine.sync_all()
        rec = engine.timeline.kernels()[0]
        assert rec.meta["resources"] is k.resources


class TestEngineCounters:
    def test_repricings_bounded_by_running_set_changes(self, engine):
        for _ in range(6):
            engine.submit(engine.default_stream, kernel())
        engine.sync_all()
        assert engine.running_set_changes == 12  # 6 starts + 6 finishes
        assert engine.repricings <= engine.running_set_changes + 1
        assert engine.steps >= engine.repricings

    def test_capped_advances_do_not_reprice_unchanged_set(self, engine):
        engine.submit(engine.default_stream, kernel())  # 1 ms
        engine.charge_host_time(1e-5)
        before = engine.repricings
        for _ in range(20):
            engine.charge_host_time(1e-5)  # kernel still running
        # The running set never changed: rates stay cached.
        assert engine.repricings == before
        engine.sync_all()

    def test_idle_tracks_busy_stream_counter(self, engine):
        streams = [engine.create_stream() for _ in range(3)]
        assert engine.idle
        for s in streams:
            engine.submit(s, kernel())
        assert not engine.idle
        engine.sync_all()
        assert engine.idle
        engine.reclaim_streams(streams)
        assert engine.idle
        engine.submit(engine.default_stream, kernel())
        engine.sync_all()
        assert engine.idle

    def test_parked_stream_wakes_on_event_record(self, engine):
        s1, s2, s3 = (engine.create_stream() for _ in range(3))
        a = kernel(label="a")
        engine.submit(s1, a)
        ev = engine.record_event(s1)
        engine.wait_event(s2, ev)
        b = kernel(label="b")
        engine.submit(s2, b)
        # Drain s3 first: s2 stays parked on ev the whole time.
        engine.submit(s3, kernel(label="c"))
        engine.sync_stream(s3)
        engine.sync_all()
        assert b.start_time >= a.end_time


class TestWorkConservation:
    def test_contended_kernels_total_time(self, engine):
        # Two full-device kernels of 1 ms each must take exactly 2 ms
        # when space-shared (rates halve), conserving total work.
        s1, s2 = engine.create_stream(), engine.create_stream()
        engine.submit(s1, kernel(label="a"))
        engine.submit(s2, kernel(label="b"))
        engine.sync_all()
        assert engine.clock == pytest.approx(2e-3, rel=1e-5)

    def test_staggered_contention(self, engine):
        # b starts after a's first kernel; exact piecewise-rate check.
        s1, s2 = engine.create_stream(), engine.create_stream()
        a1 = kernel(label="a1")
        a2 = kernel(label="a2")
        b = kernel(label="b")
        engine.submit(s1, a1)
        engine.submit(s1, a2)
        engine.submit(s2, b)
        engine.sync_all()
        # Three 1 ms full-device kernels, two streams: s1 runs a1,a2
        # back-to-back sharing with b throughout. Total work = 3 ms of
        # device time; the device is never idle until the last finishes.
        assert engine.clock == pytest.approx(3e-3, rel=1e-5)
