"""Property-based tests of the contention model's conservation laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.contention import ContentionModel
from repro.gpusim.ops import KernelOp, KernelResourceRequest
from repro.gpusim.specs import ALL_GPUS, GTX1660_SUPER

kernel_strategy = st.builds(
    lambda flops, dram, l2, instr, threads, cap, fp64: KernelOp(
        label="k",
        resources=KernelResourceRequest(
            flops=flops,
            fp64=fp64,
            dram_bytes=dram,
            l2_bytes=l2,
            instructions=instr,
            threads_total=threads,
            sm_fraction_cap=cap,
        ),
    ),
    flops=st.floats(0, 1e12),
    dram=st.floats(0, 1e10),
    l2=st.floats(0, 1e10),
    instr=st.floats(0, 1e11),
    threads=st.integers(32, 1 << 20),
    cap=st.floats(0.1, 1.0),
    fp64=st.booleans(),
)

kernel_sets = st.lists(kernel_strategy, min_size=1, max_size=12)


@pytest.fixture
def model():
    return ContentionModel(GTX1660_SUPER)


class TestAllocationProperties:
    @given(kernel_sets)
    @settings(max_examples=150, deadline=None)
    def test_rates_positive(self, kernels):
        model = ContentionModel(GTX1660_SUPER)
        alloc = model.allocate(list(kernels))
        for k in kernels:
            assert alloc.rates[k.op_id] > 0

    @given(kernel_sets)
    @settings(max_examples=150, deadline=None)
    def test_never_faster_than_solo(self, kernels):
        model = ContentionModel(GTX1660_SUPER)
        alloc = model.allocate(list(kernels))
        for k in kernels:
            solo_rate = 1.0 / model.kernel_duration(k)
            assert alloc.rates[k.op_id] <= solo_rate * (1 + 1e-9)

    @given(kernel_sets)
    @settings(max_examples=150, deadline=None)
    def test_sm_shares_conserve_device(self, kernels):
        model = ContentionModel(GTX1660_SUPER)
        alloc = model.allocate(list(kernels))
        assert sum(alloc.kernel_sm_share.values()) <= 1.0 + 1e-9

    @given(kernel_sets)
    @settings(max_examples=100, deadline=None)
    def test_dram_demand_capped(self, kernels):
        """Aggregate DRAM draw at the allocated rates never exceeds the
        device's bandwidth."""
        model = ContentionModel(GTX1660_SUPER)
        alloc = model.allocate(list(kernels))
        demand = sum(
            alloc.rates[k.op_id] * k.resources.dram_bytes for k in kernels
        )
        assert demand <= GTX1660_SUPER.dram_bandwidth_gbs * 1e9 * (1 + 1e-6)

    @given(kernel_strategy)
    @settings(max_examples=100, deadline=None)
    def test_single_kernel_gets_solo_rate(self, k):
        model = ContentionModel(GTX1660_SUPER)
        alloc = model.allocate([k])
        assert alloc.rates[k.op_id] == pytest.approx(
            1.0 / model.kernel_duration(k), rel=1e-9
        )

    @given(kernel_strategy)
    @settings(max_examples=60, deadline=None)
    def test_duration_finite_on_every_gpu(self, k):
        for spec in ALL_GPUS:
            d = ContentionModel(spec).kernel_duration(k)
            assert d > 0 and d < float("inf")

    @given(kernel_sets)
    @settings(max_examples=60, deadline=None)
    def test_adding_a_kernel_never_speeds_others_up(self, kernels):
        model = ContentionModel(GTX1660_SUPER)
        base = model.allocate(list(kernels[:-1])) if len(kernels) > 1 else None
        full = model.allocate(list(kernels))
        if base is not None:
            for k in kernels[:-1]:
                assert full.rates[k.op_id] <= base.rates[k.op_id] * (
                    1 + 1e-9
                )


class TestBlockSizeSensitivity:
    def test_memory_bound_insensitive_to_occupancy(self, model):
        lo = KernelOp(
            label="lo",
            resources=KernelResourceRequest(
                flops=0, fp64=False, dram_bytes=1e9, l2_bytes=0,
                instructions=0, threads_total=2048,
            ),
        )
        hi = KernelOp(
            label="hi",
            resources=KernelResourceRequest(
                flops=0, fp64=False, dram_bytes=1e9, l2_bytes=0,
                instructions=0,
                threads_total=GTX1660_SUPER.max_resident_threads,
            ),
        )
        # Bandwidth is device-wide: tiny grids stream just as fast.
        assert model.kernel_duration(lo) == pytest.approx(
            model.kernel_duration(hi), rel=1e-9
        )

    def test_compute_bound_scales_with_occupancy(self, model):
        full = GTX1660_SUPER.max_resident_threads

        def k(threads):
            return KernelOp(
                label="k",
                resources=KernelResourceRequest(
                    flops=1e11, fp64=False, dram_bytes=0, l2_bytes=0,
                    instructions=0, threads_total=threads,
                ),
            )

        assert model.kernel_duration(k(full // 8)) == pytest.approx(
            8 * model.kernel_duration(k(full)), rel=1e-6
        )
