"""Frozen pre-class contention allocator — DO NOT EDIT.

This is the verbatim per-op ``ContentionModel`` as it stood before the
contention-class rewrite (one roofline evaluation and one pool fold per
*running op*, in running-list order).  The property tests in
``test_contention_classes.py`` pin the live class-based model against
it: the class pricing must assign every op the same rate the per-op
allocator would, so any drift in the ladder folds, the signature
interning or the incremental multiset maintenance shows up as a
disagreement with this file.

Kept self-contained on purpose (own ``KernelTimings`` / allocation
container) so edits to the live model cannot silently rewrite the
reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.ops import (
    KernelOp,
    Operation,
    TransferDirection,
    TransferOp,
)
from repro.gpusim.specs import GPUSpec

#: Progress below this is treated as a stall (guards divide-by-zero).
_EPSILON = 1e-18


@dataclass(frozen=True)
class ReferenceRateAllocation:
    """Rates assigned to the running set at one instant."""

    rates: dict[int, float]
    kernel_sm_share: dict[int, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ReferenceKernelTimings:
    """Uncontended roofline terms for one kernel launch, in seconds."""

    compute_time: float
    dram_time: float
    l2_time: float
    instruction_time: float
    fault_time: float
    sm_fraction: float

    @property
    def duration(self) -> float:
        steady = max(
            self.compute_time,
            self.dram_time,
            self.l2_time,
            self.instruction_time,
            _EPSILON,
        )
        return steady + self.fault_time


class ReferenceContentionModel:
    """Computes per-operation progress rates for a running set."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec

    # -- single-kernel roofline -----------------------------------------

    def kernel_sm_fraction(
        self, threads_total: int, cap: float = 1.0
    ) -> float:
        frac = threads_total / self.spec.max_resident_threads
        frac = max(frac, 1.0 / self.spec.sm_count)
        return min(1.0, frac, cap)

    def kernel_timings(self, op: KernelOp) -> ReferenceKernelTimings:
        """Uncontended execution-time components of one kernel."""
        res = op.resources
        assert res is not None
        sm_frac = self.kernel_sm_fraction(
            res.threads_total, res.sm_fraction_cap
        )
        # Compute-like resources scale with the SM fraction actually
        # occupied; bandwidth-like resources are device-wide.
        flops_rate = self.spec.flops_rate(res.fp64) * sm_frac
        instr_rate = self.spec.instruction_rate() * sm_frac
        dram_bw = self.spec.dram_bandwidth_gbs * 1e9
        l2_bw = self.spec.l2_bandwidth_gbs * 1e9
        fault_bw = self.spec.pagefault_bandwidth_gbs * 1e9

        compute_time = res.flops / max(flops_rate, _EPSILON)
        instruction_time = res.instructions / max(instr_rate, _EPSILON)
        dram_time = res.dram_bytes / dram_bw
        l2_time = res.l2_bytes / l2_bw
        if res.fault_bytes > 0:
            if fault_bw <= 0:
                raise ValueError(
                    f"{self.spec.name} has no page-fault engine but kernel"
                    f" {op.label!r} has fault_bytes set"
                )
            fault_time = res.fault_bytes / fault_bw
        else:
            fault_time = 0.0
        return ReferenceKernelTimings(
            compute_time=compute_time,
            dram_time=dram_time,
            l2_time=l2_time,
            instruction_time=instruction_time,
            fault_time=fault_time,
            sm_fraction=sm_frac,
        )

    def kernel_duration(self, op: KernelOp) -> float:
        return self.kernel_timings(op).duration

    # -- running-set rate allocation -------------------------------------

    def allocate(self, running: list[Operation]) -> ReferenceRateAllocation:
        """Assign progress rates to every running operation."""
        rates: dict[int, float] = {}
        sm_share: dict[int, float] = {}

        kernels = [op for op in running if isinstance(op, KernelOp)]
        transfers = [op for op in running if isinstance(op, TransferOp)]

        self._allocate_kernels(kernels, rates, sm_share)
        self._allocate_transfers(transfers, rates)

        for op in running:
            if op.op_id not in rates:
                rates[op.op_id] = float("inf")
        return ReferenceRateAllocation(rates=rates, kernel_sm_share=sm_share)

    def _allocate_kernels(
        self,
        kernels: list[KernelOp],
        rates: dict[int, float],
        sm_share: dict[int, float],
    ) -> None:
        if not kernels:
            return
        timings = {k.op_id: self.kernel_timings(k) for k in kernels}

        # 1. SM water-filling: grant each kernel its demanded fraction,
        #    scaled down if the device is over-committed.
        total_demand = sum(t.sm_fraction for t in timings.values())
        sm_scale = 1.0 if total_demand <= 1.0 else 1.0 / total_demand

        # 2. Tentative speed given granted SMs only.
        speed: dict[int, float] = {}
        for k in kernels:
            t = timings[k.op_id]
            granted = t.sm_fraction * sm_scale
            sm_share[k.op_id] = granted
            speed[k.op_id] = granted / t.sm_fraction  # <= 1.0

        # 3. Shared device-wide pools: DRAM bandwidth, L2 bandwidth and
        #    the page-fault controller.
        for pool_time in (
            lambda t: t.dram_time,
            lambda t: t.l2_time,
            lambda t: t.fault_time,
        ):
            self._cap_shared_pool(kernels, timings, speed, pool_time)

        for k in kernels:
            t = timings[k.op_id]
            rates[k.op_id] = speed[k.op_id] / t.duration

    @staticmethod
    def _cap_shared_pool(kernels, timings, speed, pool_time) -> None:
        """Cap every pool user's ``speed`` at its proportional share."""
        weight = 0.0
        for k in kernels:
            t = timings[k.op_id]
            weight += pool_time(t) / t.duration
        if weight <= 1.0:
            return
        cap = 1.0 / weight
        for k in kernels:
            t = timings[k.op_id]
            if pool_time(t) > 0:
                speed[k.op_id] = min(speed[k.op_id], cap)

    #: Rate assigned to transfers queued behind the DMA engine head.
    _DMA_QUEUE_RATE = 1e-6

    def _allocate_transfers(
        self, transfers: list[TransferOp], rates: dict[int, float]
    ) -> None:
        """PCIe transfer rates: one DMA engine per direction, head gets
        the full link, the rest queue."""
        if not transfers:
            return
        pcie_bw = self.spec.pcie_bandwidth_gbs * 1e9
        by_dir: dict[TransferDirection, list[TransferOp]] = {}
        for t in transfers:
            by_dir.setdefault(t.direction, []).append(t)
        for ops in by_dir.values():
            ops.sort(key=lambda t: t.op_id)  # submission order
            rates[ops[0].op_id] = pcie_bw
            for t in ops[1:]:
                rates[t.op_id] = self._DMA_QUEUE_RATE
