"""Tests for the multi-GPU extension (section-VI future work)."""

import numpy as np
import pytest

from repro.core.race import check_no_races
from repro.gpusim.specs import GTX1660_SUPER
from repro.gpusim.timeline import IntervalKind
from repro.kernels import LinearCostModel
from repro.multigpu import (
    DevicePlacementPolicy,
    MultiGpuScheduler,
)

COST = LinearCostModel(
    flops_per_item=500.0,
    dram_bytes_per_item=8.0,
    instructions_per_item=100.0,
)

N = 1 << 20


def make_scheduler(n_gpus=2, policy=DevicePlacementPolicy.MIN_TRANSFER):
    return MultiGpuScheduler(["1660"] * n_gpus, policy=policy)


class TestMultiGpuArray:
    def test_fresh_array_valid_everywhere(self):
        sched = make_scheduler()
        a = sched.array(100, name="a")
        assert a.host_valid
        assert a.resident_on(0) and a.resident_on(1)
        assert a.migration_source(0) is None

    def test_cpu_write_invalidates_devices(self):
        sched = make_scheduler()
        a = sched.array(100)
        a.mark_cpu_write()
        assert not a.resident_on(0)
        assert a.migration_source(0) == -1  # host upload

    def test_device_write_invalidates_peers_and_host(self):
        sched = make_scheduler()
        a = sched.array(100)
        a.mark_write(0)
        assert a.resident_on(0)
        assert not a.resident_on(1)
        assert not a.host_valid
        assert a.migration_source(1) == 0  # peer-to-peer

    def test_migration_bytes(self):
        sched = make_scheduler()
        a = sched.array(100)
        a.mark_cpu_write()
        assert a.migration_bytes(0) == a.nbytes
        a.mark_read(0)
        assert a.migration_bytes(0) == 0

    def test_allocation_accounted_on_all_devices(self):
        sched = make_scheduler()
        a = sched.array(1000)
        for dev in sched.devices:
            assert dev.allocated_bytes == a.nbytes

    def test_copy_from_host_shape_check(self):
        sched = make_scheduler()
        a = sched.array(4)
        with pytest.raises(ValueError):
            a.copy_from_host(np.zeros(5))


class TestPlacement:
    def run_independent(self, policy, chains=4):
        sched = make_scheduler(2, policy)
        k = sched.build_kernel(
            lambda x, n: None, "k", "ptr, sint32", COST
        )
        arrays = [
            sched.array(N, name=f"x{i}", materialize=False)
            for i in range(chains)
        ]
        for a in arrays:
            sched.write_input(a)
        for a in arrays:
            k(512, 256)(a, N)
        sched.sync()
        return sched

    def test_round_robin_alternates(self):
        sched = self.run_independent(DevicePlacementPolicy.ROUND_ROBIN)
        assert sched.device_kernel_counts() == [2, 2]

    def test_min_transfer_balances_fresh_inputs(self):
        # Host-fresh inputs cost the same everywhere; the load tiebreak
        # spreads them.
        sched = self.run_independent(DevicePlacementPolicy.MIN_TRANSFER)
        assert sched.device_kernel_counts() == [2, 2]

    def test_least_loaded_balances_independent_work(self):
        sched = self.run_independent(DevicePlacementPolicy.LEAST_LOADED)
        assert sched.device_kernel_counts() == [2, 2]

    def test_least_loaded_ignores_data_location(self):
        # A dependent chain: locality would keep it on one GPU, but
        # least-loaded chases the idle device and pays peer transfers.
        sched = make_scheduler(2, DevicePlacementPolicy.LEAST_LOADED)
        k = sched.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        a = sched.array(N, name="a", materialize=False)
        sched.write_input(a)
        for _ in range(4):
            k(512, 256)(a, N)
        sched.sync()
        counts = sched.device_kernel_counts()
        assert all(c > 0 for c in counts)  # chain spread across GPUs
        d2d = [
            r for r in sched.engine.timeline
            if r.kind is IntervalKind.TRANSFER_D2D
        ]
        assert d2d  # the price: peer migrations min-transfer avoids

    def test_min_transfer_follows_data(self):
        # A chain on one array: after the first kernel the data lives on
        # one GPU; locality keeps the rest of the chain there.
        sched = make_scheduler(2, DevicePlacementPolicy.MIN_TRANSFER)
        k = sched.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        a = sched.array(N, name="a", materialize=False)
        sched.write_input(a)
        for _ in range(4):
            k(512, 256)(a, N)
        sched.sync()
        counts = sched.device_kernel_counts()
        assert sorted(counts) == [0, 4]  # the whole chain on one GPU
        d2d = [
            r for r in sched.engine.timeline
            if r.kind is IntervalKind.TRANSFER_D2D
        ]
        assert d2d == []  # no peer traffic: locality preserved

    def test_round_robin_pays_peer_transfers(self):
        sched = make_scheduler(2, DevicePlacementPolicy.ROUND_ROBIN)
        k = sched.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        a = sched.array(N, name="a", materialize=False)
        sched.write_input(a)
        for _ in range(4):
            k(512, 256)(a, N)
        sched.sync()
        d2d = [
            r for r in sched.engine.timeline
            if r.kind is IntervalKind.TRANSFER_D2D
        ]
        assert len(d2d) >= 3  # the chain ping-pongs between GPUs

    def test_min_transfer_beats_round_robin_on_chains(self):
        def run(policy):
            sched = make_scheduler(2, policy)
            k = sched.build_kernel(
                lambda x, n: None, "k", "ptr, sint32", COST
            )
            a = sched.array(N, name="a", materialize=False)
            sched.write_input(a)
            for _ in range(6):
                k(512, 256)(a, N)
            sched.sync()
            return sched.elapsed

        assert run(DevicePlacementPolicy.MIN_TRANSFER) < run(
            DevicePlacementPolicy.ROUND_ROBIN
        )


class TestScaling:
    def independent_chains_time(self, n_gpus, chains=8):
        sched = make_scheduler(n_gpus)
        k = sched.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        arrays = [
            sched.array(N, name=f"x{i}", materialize=False)
            for i in range(chains)
        ]
        for a in arrays:
            sched.write_input(a)
        for _ in range(2):
            for a in arrays:
                k(512, 256)(a, N)
        sched.sync()
        return sched.elapsed

    def test_two_gpus_faster_than_one(self):
        t1 = self.independent_chains_time(1)
        t2 = self.independent_chains_time(2)
        assert t2 < t1 * 0.75

    def test_four_gpus_faster_than_two(self):
        t2 = self.independent_chains_time(2)
        t4 = self.independent_chains_time(4)
        assert t4 < t2


class TestCorrectness:
    def test_functional_execution_across_gpus(self):
        sched = make_scheduler(2)
        n = 1024

        def double(x, m):
            x[:m] *= 2.0

        k = sched.build_kernel(double, "double", "ptr, sint32", COST)
        a = sched.array(n, name="a")
        sched.write_input(a, np.ones(n, dtype=np.float32))
        for _ in range(3):
            k(64, 128)(a, n)
        out = sched.read_result(a)
        assert np.all(out == 8.0)

    def test_dependencies_respected_across_gpus(self):
        sched = make_scheduler(2, DevicePlacementPolicy.ROUND_ROBIN)
        k = sched.build_kernel(
            lambda x, y, n: None, "k", "const ptr, ptr, sint32", COST
        )
        a = sched.array(N, name="a", materialize=False)
        b = sched.array(N, name="b", materialize=False)
        c = sched.array(N, name="c", materialize=False)
        sched.write_input(a)
        k(512, 256)(a, b, N)   # gpu0
        k(512, 256)(b, c, N)   # gpu1: must wait for gpu0's kernel
        sched.sync()
        kernels = sorted(
            sched.engine.timeline.kernels(), key=lambda r: r.start
        )
        assert kernels[1].start >= kernels[0].end
        check_no_races(sched.engine.timeline)

    def test_no_races_with_round_robin_fanout(self):
        sched = make_scheduler(2, DevicePlacementPolicy.ROUND_ROBIN)
        reader = sched.build_kernel(
            lambda x, o, n: None, "r", "const ptr, ptr, sint32", COST
        )
        shared = sched.array(N, name="s", materialize=False)
        outs = [
            sched.array(N, name=f"o{i}", materialize=False)
            for i in range(4)
        ]
        sched.write_input(shared)
        for o in outs:
            reader(512, 256)(shared, o, N)
        sched.sync()
        check_no_races(sched.engine.timeline)


class TestEngineMultiDevice:
    def test_streams_pinned_to_devices(self):
        sched = make_scheduler(2)
        k = sched.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        a = sched.array(N, name="a", materialize=False)
        b = sched.array(N, name="b", materialize=False)
        sched.write_input(a)
        sched.write_input(b)
        k(512, 256)(a, N)
        k(512, 256)(b, N)
        sched.sync()
        indices = {
            s.device_index for s in sched.engine.streams if s.completed_count
        }
        assert indices == {0, 1}

    def test_device_contention_is_independent(self):
        # Two full-device kernels on two GPUs run at full speed each;
        # on one GPU they halve.
        from repro.gpusim import Device, SimEngine
        from repro.gpusim.ops import KernelOp, KernelResourceRequest

        def kernel():
            return KernelOp(
                label="k",
                resources=KernelResourceRequest(
                    flops=3.8e12, fp64=False, dram_bytes=0, l2_bytes=0,
                    instructions=0,
                    threads_total=GTX1660_SUPER.max_resident_threads,
                ),
            )

        dual = SimEngine([Device(GTX1660_SUPER), Device(GTX1660_SUPER)])
        s0 = dual.create_stream(device_index=0)
        s1 = dual.create_stream(device_index=1)
        dual.submit(s0, kernel())
        dual.submit(s1, kernel())
        dual.sync_all()
        assert dual.clock == pytest.approx(1.0, rel=1e-6)

        single = SimEngine(Device(GTX1660_SUPER))
        sa = single.create_stream()
        sb = single.create_stream()
        single.submit(sa, kernel())
        single.submit(sb, kernel())
        single.sync_all()
        assert single.clock == pytest.approx(2.0, rel=1e-6)

    def test_bad_device_index_rejected(self):
        from repro.errors import InvalidStateError
        from repro.gpusim import Device, SimEngine

        engine = SimEngine(Device(GTX1660_SUPER))
        with pytest.raises(InvalidStateError):
            engine.create_stream(device_index=1)
