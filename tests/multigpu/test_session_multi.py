"""Multi-GPU sessions behind the unified API: transparent polyglot
programs, movement policies on the fleet, and completion-applied
location-set transitions."""

import numpy as np
import pytest

from repro import DevicePlacementPolicy, SchedulerConfig, Session
from repro.core.race import check_no_races
from repro.gpusim.timeline import IntervalKind
from repro.kernels import LinearCostModel
from repro.lang import Polyglot
from repro.memory.coherence import MovementPolicy
from repro.workloads import Mode
from repro.workloads.suite import BENCHMARKS, create_benchmark, default_scales

COST = LinearCostModel(
    flops_per_item=500.0,
    dram_bytes_per_item=8.0,
    instructions_per_item=100.0,
)

N = 1 << 18


def run_polyglot_program(gpus: int) -> tuple[float, np.ndarray]:
    """The paper's Fig. 4 program, written once, device count as
    configuration."""
    sess = Session(gpus=gpus, gpu="GTX 1660 Super")
    poly = Polyglot(sess)
    buildkernel = poly.eval("grcuda", "buildkernel")

    def square(x, n):
        np.square(x[:n], out=x[:n])

    def diff_sum(x, y, z, n):
        z[0] = float(np.sum(x[:n] - y[:n], dtype=np.float64))

    k1 = buildkernel(square, "square", "ptr, sint32", COST)
    k2 = buildkernel(
        diff_sum, "sum", "const ptr, const ptr, ptr, sint32", COST
    )
    n = 4096
    x = poly.eval("grcuda", f"float[{n}]")
    y = poly.eval("grcuda", f"float[{n}]")
    z = poly.eval("grcuda", "float[1]")
    x.copy_from_host(np.full(n, 2.0, dtype=np.float32))
    y.copy_from_host(np.full(n, 3.0, dtype=np.float32))
    k1(64, 64)(x, n)
    k1(64, 64)(y, n)
    k2(64, 64)(x, y, z, n)
    result = z[0]
    sess.sync()
    return result, x.to_numpy()


class TestPolyglotTransparency:
    def test_dsl_program_bit_identical_across_device_counts(self):
        res1, x1 = run_polyglot_program(1)
        res2, x2 = run_polyglot_program(2)
        assert res1 == res2  # bit-identical scalar result
        assert np.array_equal(x1, x2)
        assert res1 == 4096 * (4.0 - 9.0)

    def test_polyglot_arrays_are_fleet_arrays(self):
        from repro.multigpu import MultiGpuArray

        sess = Session(gpus=2)
        arr = Polyglot(sess).eval("grcuda", "float[16]")
        assert isinstance(arr, MultiGpuArray)
        arr[3] = 5.0
        assert arr[3] == 5.0


class TestWorkloadsOnFleet:
    """The six suite workloads run unchanged on a 2-GPU session with
    results identical to single-GPU execution (and therefore to the
    pre-refactor MultiGpuScheduler, which shared the single-GPU
    kernels)."""

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_results_match_single_gpu(self, name):
        scale = default_scales(name, "GTX 1660 Super")[0]

        def run(gpus):
            bench = create_benchmark(name, scale, iterations=2)
            res = bench.run(
                "GTX 1660 Super", Mode.PARALLEL,
                movement=MovementPolicy.PAGE_FAULT, gpus=gpus,
            )
            return res.results

        assert run(2) == run(1)

    @pytest.mark.parametrize(
        "placement",
        [DevicePlacementPolicy.ROUND_ROBIN,
         DevicePlacementPolicy.LEAST_LOADED],
    )
    def test_vec_race_free_on_fleet(self, placement):
        scale = default_scales("vec", "GTX 1660 Super")[0]
        bench = create_benchmark("vec", scale, iterations=2)
        res = bench.run(
            "GTX 1660 Super", Mode.PARALLEL,
            gpus=2, placement=placement,
        )
        check_no_races(res.timeline)


def chain_session(policy: MovementPolicy, placement=None):
    """A 6-kernel chain over one array on two GPUs — the shape where the
    movement policy decides whether peer mirrors happen at all."""
    sess = Session(
        gpus=2,
        config=SchedulerConfig(
            movement=policy,
            placement=placement or DevicePlacementPolicy.ROUND_ROBIN,
        ),
    )
    k = sess.build_kernel(lambda x, n: None, "step", "ptr, sint32", COST)
    a = sess.array(N, name="chain", materialize=False)
    a.touch_write_full()
    for _ in range(6):
        k(512, 256)(a, N)
    sess.sync()
    return sess


def d2d_bytes(sess) -> float:
    return sum(
        r.nbytes
        for r in sess.timeline()
        if r.kind is IntervalKind.TRANSFER_D2D
    )


class TestFleetMovementPolicies:
    def test_page_fault_issues_no_peer_mirrors(self):
        """Regression: ``acquire_multi`` must respect PAGE_FAULT — the
        old path mirrored eagerly whatever the policy said."""
        fault = chain_session(MovementPolicy.PAGE_FAULT)
        assert d2d_bytes(fault) == 0.0
        m = fault.metrics()
        assert m.fault_bytes > 0
        assert m.migrated_bytes == 0.0

    def test_fault_moves_fewer_d2d_bytes_than_eager(self):
        fault = chain_session(MovementPolicy.PAGE_FAULT)
        eager = chain_session(MovementPolicy.EAGER_PREFETCH)
        assert d2d_bytes(fault) < d2d_bytes(eager)
        assert d2d_bytes(eager) > 0  # the ping-pong really mirrors

    def test_eager_at_least_as_fast_as_fault(self):
        """The ROADMAP dominance relation, fleet-wide."""
        fault = chain_session(MovementPolicy.PAGE_FAULT)
        eager = chain_session(MovementPolicy.EAGER_PREFETCH)
        assert eager.elapsed() <= fault.elapsed() * (1 + 1e-9)

    def test_batched_coalesces_multi_input_acquires(self):
        sess = Session(
            gpus=2,
            config=SchedulerConfig(
                movement=MovementPolicy.BATCHED,
                placement=DevicePlacementPolicy.ROUND_ROBIN,
            ),
        )
        k = sess.build_kernel(
            lambda x, y, o, n: None, "join",
            "const ptr, const ptr, ptr, sint32", COST,
        )
        x = sess.array(N, name="x", materialize=False)
        y = sess.array(N, name="y", materialize=False)
        o = sess.array(N, name="o", materialize=False)
        x.touch_write_full()
        y.touch_write_full()
        k(512, 256)(x, y, o, N)
        sess.sync()
        assert sess.metrics().coalesced_transfers >= 1


class TestFleetMovementHarness:
    def test_sweep_asserts_dominance_per_placement(self):
        """The movement-bench fleet grid runs end-to-end and enforces
        eager <= fault on makespan for every placement policy."""
        from repro.harness.movement import (
            render_fleet_table,
            sweep_fleet_movement,
        )

        cells = sweep_fleet_movement(
            benchmarks=("vec",), iterations=2, execute=False
        )
        # placements x (movement policies + windowed BATCHED), one
        # workload
        assert len(cells) == 3 * (len(MovementPolicy) + 1)
        by_key = {
            (c.placement, c.policy): c for c in cells if c.window == 0
        }
        for placement in DevicePlacementPolicy:
            eager = by_key[(placement, MovementPolicy.EAGER_PREFETCH)]
            fault = by_key[(placement, MovementPolicy.PAGE_FAULT)]
            assert eager.elapsed <= fault.elapsed * (1 + 1e-9)
            assert fault.fault_bytes > 0
            assert fault.moved_bytes == 0.0
        table = render_fleet_table(cells)
        assert "placement" in table and "page-fault" in table


class TestMixedPolicyFleetOrdering:
    def test_peer_copy_waits_for_faulting_kernel(self):
        """A fault-materialized replica does not exist until its kernel
        completes: a consumer on a fault-less device that peer-copies
        from it must be ordered behind the kernel's finish event."""
        sess = Session(
            gpus=2,
            gpu=["Tesla P100", "GTX 960"],  # 960: no fault engine
            config=SchedulerConfig(
                movement=MovementPolicy.PAGE_FAULT,
                placement=DevicePlacementPolicy.ROUND_ROBIN,
            ),
        )
        k = sess.build_kernel(
            lambda x, o, n: None, "r", "const ptr, ptr, sint32", COST
        )
        a = sess.array(N, name="a", materialize=False)
        o1 = sess.array(N, name="o1", materialize=False)
        o2 = sess.array(N, name="o2", materialize=False)
        a.touch_write_full()
        k(512, 256)(a, o1, N)  # gpu0 (P100): faults `a` in
        k(512, 256)(a, o2, N)  # gpu1 (960): eager peer copy from gpu0
        sess.sync()
        kernels = sorted(sess.timeline().kernels(), key=lambda r: r.start)
        d2d = [
            r for r in sess.timeline()
            if r.kind is IntervalKind.TRANSFER_D2D
        ]
        assert d2d, "the 960 must mirror from the P100's replica"
        faulting_kernel_end = kernels[0].end
        assert d2d[0].start >= faulting_kernel_end
        check_no_races(sess.timeline())


class TestCompletionAppliedTransitions:
    def test_location_set_commits_at_completion_not_submission(self):
        """The planned/committed split now covers MultiGpuArray: the
        committed location set moves only when the migration (or the
        faulting kernel) completes on the simulated device."""
        sess = Session(
            gpus=2,
            config=SchedulerConfig(
                movement=MovementPolicy.EAGER_PREFETCH,
                placement=DevicePlacementPolicy.ROUND_ROBIN,
            ),
        )
        k = sess.build_kernel(lambda x, n: None, "w", "ptr, sint32", COST)
        a = sess.array(N, name="a", materialize=False)
        a.touch_write_full()
        k(512, 256)(a, N)  # round-robin -> gpu0, write
        committed_after_submit = set(a.valid_on)
        host_after_submit = a.host_valid
        # Submission must not have committed the GPU write: the host
        # copy is still the only valid one until the kernel completes.
        assert committed_after_submit == set()
        assert host_after_submit
        # The planned overlay already sees the in-flight write.
        assert sess.context.coherence.multi_resident(a, 0)
        assert not sess.context.coherence.multi_host_valid(a)
        sess.sync()
        assert a.valid_on == {0}
        assert not a.host_valid

    def test_placement_prices_planned_residency(self):
        """Min-transfer keeps a dependent chain on one device because
        pricing reads the planned overlay (committed state still lags
        at submission time)."""
        sess = chain_session(
            MovementPolicy.EAGER_PREFETCH,
            placement=DevicePlacementPolicy.MIN_TRANSFER,
        )
        counts = sess.context.device_kernel_counts()
        assert sorted(counts) == [0, 6]
        assert d2d_bytes(sess) == 0.0

    def test_host_write_kills_in_flight_migration(self):
        """A full host overwrite supersedes an in-flight mirror: when
        the dead migration lands it must not resurrect the replica."""
        sess = Session(
            gpus=2,
            config=SchedulerConfig(
                movement=MovementPolicy.EAGER_PREFETCH,
                placement=DevicePlacementPolicy.ROUND_ROBIN,
            ),
        )
        k = sess.build_kernel(lambda x, n: None, "r", "const ptr, sint32",
                              COST)
        a = sess.array(N, name="a", materialize=False)
        a.touch_write_full()
        k(512, 256)(a, N)       # mirrors host -> gpu0 (in flight)
        a.touch_write_full()    # full overwrite: syncs, invalidates
        assert a.host_valid
        assert a.valid_on == set()
        sess.sync()
        # The superseded migration's completion did not mark gpu0 valid.
        assert a.valid_on == set()
        assert a.host_valid
