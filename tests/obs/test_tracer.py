"""Unit + engine-integration tests for the span tracer."""

import pytest

from repro.gpusim.device import Device
from repro.gpusim.engine import SimEngine
from repro.gpusim.ops import KernelOp, KernelResourceRequest
from repro.gpusim.specs import gpu_by_name
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_tracer,
    set_default_tracer,
    use_tracer,
)


def _kernel(label="k"):
    return KernelOp(
        label=label,
        resources=KernelResourceRequest(
            flops=1e8,
            fp64=False,
            dram_bytes=float(1 << 16),
            l2_bytes=0.0,
            instructions=0.0,
            threads_total=4096,
        ),
    )


def _engine(tracer=None, gpu="GTX 1660 Super"):
    return SimEngine(Device(gpu_by_name(gpu)), tracer=tracer)


class TestSpans:
    def test_span_records_virtual_interval_from_clock(self):
        tracer = Tracer()
        clock = iter([1.5, 4.0])
        with tracer.span("work", track="t", clock=lambda: next(clock)):
            pass
        (ev,) = tracer.events
        assert ev.ph == "X"
        assert ev.name == "work"
        assert ev.track == "t"
        assert ev.vt == 1.5
        assert ev.dur == 2.5
        assert ev.wall_dur >= 0.0

    def test_nesting_depths_and_close_order(self):
        tracer = Tracer()
        outer = tracer.span("outer", track="t")
        inner = tracer.span("inner", track="t")
        inner.close()
        outer.close()
        inner_ev, outer_ev = tracer.events
        assert inner_ev.name == "inner" and inner_ev.depth == 1
        assert outer_ev.name == "outer" and outer_ev.depth == 0
        # depth bookkeeping is per track
        other = tracer.span("elsewhere", track="u")
        other.close()
        assert tracer.events[-1].depth == 0

    def test_annotate_merges_attributes(self):
        tracer = Tracer()
        with tracer.span("s", track="t", policy="eager") as span:
            span.annotate(stale=3)
        (ev,) = tracer.events
        assert ev.attrs == {"policy": "eager", "stale": 3}

    def test_instant_and_complete(self):
        tracer = Tracer()
        tracer.instant("mark", track="t", vt=2.0, cause="x")
        tracer.complete("op", track="t", vt_start=1.0, vt_end=3.0)
        mark, op = tracer.events
        assert mark.ph == "i" and mark.vt == 2.0 and mark.dur == 0.0
        assert mark.attrs == {"cause": "x"}
        assert op.ph == "X" and op.vt == 1.0 and op.dur == 2.0

    def test_clear_and_len(self):
        tracer = Tracer()
        tracer.instant("a")
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0


class TestDisabledPaths:
    @pytest.mark.parametrize(
        "tracer", [NULL_TRACER, NullTracer(), Tracer(enabled=False)]
    )
    def test_disabled_tracers_record_nothing(self, tracer):
        span = tracer.span("s", track="t")
        span.annotate(x=1)
        span.close()
        tracer.instant("i", track="t")
        tracer.complete("c", track="t", vt_start=0.0, vt_end=1.0)
        assert len(tracer.events) == 0
        assert tracer._depths == {}

    def test_disabled_span_is_the_shared_null_span(self):
        a = NULL_TRACER.span("a")
        b = Tracer(enabled=False).span("b")
        assert a is b  # zero allocation on the disabled path

    def test_disabled_attach_engine_is_a_noop(self):
        tracer = Tracer(enabled=False)
        engine = _engine(tracer=tracer)
        assert tracer.engines == []


class TestModuleDefault:
    def test_default_is_null_tracer(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_set_default_tracer_returns_previous(self):
        tracer = Tracer()
        prev = set_default_tracer(tracer)
        try:
            assert prev is NULL_TRACER
            assert current_tracer() is tracer
        finally:
            set_default_tracer(None)
        assert current_tracer() is NULL_TRACER


class TestEngineIntegration:
    def test_engine_picks_up_scoped_tracer(self):
        tracer = Tracer()
        with use_tracer(tracer):
            engine = _engine()
        assert engine.tracer is tracer
        assert tracer.engines == [engine]
        assert engine._obs_name == "engine0"

    def test_attach_engine_is_idempotent_and_keeps_name(self):
        tracer = Tracer()
        engine = _engine(tracer=tracer)
        engine._obs_name = "slot0"
        tracer.attach_engine(engine)
        assert tracer.engines == [engine]
        assert engine._obs_name == "slot0"

    def test_engine_ops_emit_spans_and_completes(self):
        tracer = Tracer()
        engine = _engine(tracer=tracer)
        stream = engine.create_stream(label="s")
        engine.submit(stream, _kernel("k0"))
        engine.sync_all()
        names = [e.name for e in tracer.events]
        assert "submit:k0" in names
        assert "start:k0" in names
        assert "sync_all" in names
        completes = [
            e for e in tracer.events if e.ph == "X" and e.name == "k0"
        ]
        assert len(completes) == 1
        # the op's virtual interval matches the timeline record exactly
        (rec,) = engine.timeline.kernels()
        assert completes[0].vt == rec.start
        assert completes[0].vt + completes[0].dur == rec.end

    def test_engine_counters_mirror_legacy_attributes(self):
        engine = _engine()
        stream = engine.create_stream(label="s")
        for i in range(3):
            engine.submit(stream, _kernel(f"k{i}"))
        engine.sync_all()
        assert engine.steps == engine.counters.get("engine.steps")
        assert engine.repricings == engine.counters.get("engine.repricings")
        assert engine.running_set_changes == engine.counters.get(
            "engine.running_set_changes"
        )
        assert engine.steps > 0
        assert engine.running_set_changes > 0
        assert isinstance(engine.steps, int)

    def test_tracing_does_not_change_the_schedule(self):
        def run(tracer):
            engine = _engine(tracer=tracer)
            streams = [engine.create_stream() for _ in range(2)]
            for i in range(8):
                engine.submit(streams[i % 2], _kernel(f"k{i}"))
            engine.sync_all()
            return engine

        def shape(engine):
            # op_ids come from a process-global counter, so project
            # them out: everything else must be bit-identical
            return [
                (r.label, r.kind, r.stream_id, r.start, r.end, r.nbytes)
                for r in engine.timeline.records
            ]

        plain = run(None)
        traced = run(Tracer())
        assert shape(plain) == shape(traced)
        assert plain.clock == traced.clock
