"""Unit tests for the observability counter/gauge registry."""

from repro.obs.counters import Counter, CounterRegistry


class TestCounter:
    def test_starts_at_integer_zero(self):
        c = Counter("x")
        assert c.value == 0
        assert isinstance(c.value, int)

    def test_inc_and_set(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set(2)
        assert c.value == 2

    def test_direct_value_writes_are_the_hot_path(self):
        c = Counter("x")
        c.value += 1
        c.value += 1
        assert c.value == 2


class TestCounterRegistry:
    def test_counter_is_create_or_get(self):
        reg = CounterRegistry()
        a = reg.counter("engine.steps")
        b = reg.counter("engine.steps")
        assert a is b
        a.value += 3
        assert reg.get("engine.steps") == 3

    def test_inc_set_get_defaults(self):
        reg = CounterRegistry()
        assert reg.get("missing") == 0
        assert reg.get("missing", default=-1) == -1
        reg.inc("a")
        reg.inc("a", 2)
        reg.set("b", 7)
        assert reg.get("a") == 3
        assert reg.get("b") == 7

    def test_set_max_is_a_high_watermark(self):
        reg = CounterRegistry()
        reg.set_max("serve.queue_depth_peak", 3)
        reg.set_max("serve.queue_depth_peak", 1)
        assert reg.get("serve.queue_depth_peak") == 3
        reg.set_max("serve.queue_depth_peak", 9)
        assert reg.get("serve.queue_depth_peak") == 9

    def test_contains_len_iter(self):
        reg = CounterRegistry()
        reg.inc("a.x")
        reg.inc("a.y")
        assert "a.x" in reg
        assert "a.z" not in reg
        assert len(reg) == 2
        assert {c.name for c in reg} == {"a.x", "a.y"}

    def test_names_and_snapshot_are_sorted_and_prefixable(self):
        reg = CounterRegistry()
        reg.inc("coherence.htod_ops", 2)
        reg.inc("engine.steps", 5)
        reg.inc("coherence.dtoh_ops", 1)
        assert reg.names() == [
            "coherence.dtoh_ops", "coherence.htod_ops", "engine.steps",
        ]
        assert reg.names("coherence.") == [
            "coherence.dtoh_ops", "coherence.htod_ops",
        ]
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap == {
            "coherence.dtoh_ops": 1,
            "coherence.htod_ops": 2,
            "engine.steps": 5,
        }
        assert reg.snapshot("engine.") == {"engine.steps": 5}

    def test_merge_accumulates_without_sharing_cells(self):
        a = CounterRegistry()
        b = CounterRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.inc("only_b", 1)
        a.merge(b)
        assert a.get("n") == 5
        assert a.get("only_b") == 1
        # the source registry is untouched, and the cells stay private
        assert b.get("n") == 3
        b.inc("n")
        assert a.get("n") == 5

    def test_merge_with_prefix_renames(self):
        a = CounterRegistry()
        b = CounterRegistry()
        b.inc("steps", 4)
        a.merge(b, prefix="engine.")
        assert a.get("engine.steps") == 4
        assert "steps" not in a

    def test_clear(self):
        reg = CounterRegistry()
        reg.inc("a")
        reg.clear()
        assert len(reg) == 0
        assert reg.get("a") == 0
