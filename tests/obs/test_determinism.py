"""Three-way golden determinism: tracing *enabled*, *explicitly
disabled*, and *absent* (the null-tracer default) must produce
bit-identical simulation results and timelines — tracing observes the
schedule, never perturbs it."""

import numpy as np
import pytest

from repro.obs.trace import Tracer, use_tracer
from repro.serve import SchedulerService, ServeConfig
from repro.serve.workloads import mixed_workload_graphs
from repro.workloads import Mode
from repro.workloads.suite import create_benchmark, default_scales

GPU = "GTX 1660 Super"

#: the three tracer states of the acceptance criteria
VARIANTS = {
    "absent": lambda: None,
    "disabled": lambda: Tracer(enabled=False),
    "enabled": lambda: Tracer(),
}


def timeline_shape(timeline):
    """Comparable projection of a timeline (op_ids are process-global,
    so two identical runs differ on them by construction)."""
    return [
        (r.label, r.kind, r.stream_id, r.start, r.end, r.nbytes)
        for r in timeline.records
    ]


class TestWorkloadDeterminism:
    @pytest.mark.parametrize("name", ["vec", "ml"])
    def test_three_way_identical_runs(self, name):
        runs = {}
        for variant, make in VARIANTS.items():
            tracer = make()
            bench = create_benchmark(
                name,
                default_scales(name, GPU)[0],
                iterations=2,
                execute=True,
            )
            with use_tracer(tracer):
                runs[variant] = bench.run(GPU, Mode.PARALLEL)
        reference = runs["absent"]
        for variant in ("disabled", "enabled"):
            run = runs[variant]
            assert run.results == reference.results, variant
            assert run.elapsed == reference.elapsed, variant
            assert run.host_clock == reference.host_clock, variant
            assert timeline_shape(run.timeline) == timeline_shape(
                reference.timeline
            ), variant
        # the enabled run actually recorded something, the others not
        # (counter registries are identical either way)
        assert runs["enabled"].counters == reference.counters


class TestServingDeterminism:
    def _serve(self, tracer):
        service = SchedulerService(
            fleet_size=2, config=ServeConfig(), tracer=tracer
        )
        for t in ("alice", "bob", "carol"):
            service.register_tenant(t)
        graphs = mixed_workload_graphs(8, seed=5)
        submitted = []
        for i, graph in enumerate(graphs):
            submitted.append(
                service.submit(
                    ("alice", "bob", "carol")[i % 3],
                    graph,
                    arrival_time=i * 1e-4,
                )
            )
        report = service.run()
        by_id = {r.request_id: r for r in report.results}
        # request ids are process-global, so align by submission order
        return service, report, [by_id[rid] for rid in submitted]

    def test_three_way_identical_serving_replay(self):
        reports, services, ordered = {}, {}, {}
        for variant, make in VARIANTS.items():
            services[variant], reports[variant], ordered[variant] = (
                self._serve(make())
            )
        ref_service, ref = services["absent"], reports["absent"]
        for variant in ("disabled", "enabled"):
            report = reports[variant]
            assert report.metrics.makespan == ref.metrics.makespan, variant
            assert len(report.results) == len(ref.results)
            for res, want in zip(ordered[variant], ordered["absent"]):
                assert res.start_time == want.start_time, variant
                assert res.finish_time == want.finish_time, variant
                assert res.device_index == want.device_index, variant
                assert res.batch_size == want.batch_size, variant
                for out_name, expected in want.outputs.items():
                    assert np.array_equal(
                        res.outputs[out_name], expected
                    ), (variant, res.request_id, out_name)
            # per-slot device timelines, bit-for-bit (modulo op_ids)
            for slot, ref_slot in zip(
                services[variant].fleet.slots, ref_service.fleet.slots
            ):
                assert timeline_shape(
                    slot.session.engine.timeline
                ) == timeline_shape(ref_slot.session.engine.timeline), (
                    variant
                )
            # the counter surface is part of the deterministic output
            assert report.counters == ref.counters, variant
        # only the enabled run recorded spans
        assert len(services["enabled"].tracer.events) > 0
        assert len(services["disabled"].tracer.events) == 0
