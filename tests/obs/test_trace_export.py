"""Chrome-trace export round-trip: schema, track naming, exact virtual
timestamps, span nesting — satellite 3 of the observability PR."""

import json

import pytest

from repro.obs.export import (
    _SCALE,
    build_chrome_trace,
    main as export_main,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import Tracer
from repro.serve import SchedulerService, ServeConfig
from repro.serve.workloads import mixed_workload_graphs


@pytest.fixture(scope="module")
def served():
    """One small traced serving run shared by the export tests."""
    tracer = Tracer()
    service = SchedulerService(
        fleet_size=2, config=ServeConfig(), tracer=tracer
    )
    for t in ("alice", "bob"):
        service.register_tenant(t)
    graphs = mixed_workload_graphs(6, seed=5)
    for i, graph in enumerate(graphs):
        service.submit(
            ("alice", "bob")[i % 2], graph, arrival_time=i * 1e-4
        )
    report = service.run()
    doc = build_chrome_trace(tracer, results=report.results)
    return tracer, report, doc


def _metadata(doc, kind):
    """{(pid[, tid]): name} for 'process_name' / 'thread_name' events."""
    out = {}
    for ev in doc["traceEvents"]:
        if ev.get("ph") == "M" and ev.get("name") == kind:
            key = (
                ev["pid"]
                if kind == "process_name"
                else (ev["pid"], ev["tid"])
            )
            out[key] = ev["args"]["name"]
    return out


class TestSchema:
    def test_round_trip_validates(self, served, tmp_path):
        tracer, report, _ = served
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer, results=report.results)
        with open(path) as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc) == []
        assert validate_chrome_trace_file(str(path)) == []
        assert doc["displayTimeUnit"] == "ms"

    def test_every_event_has_the_required_fields(self, served):
        _, _, doc = served
        assert len(doc["traceEvents"]) > 0
        for ev in doc["traceEvents"]:
            assert ev["ph"] in {"X", "i", "M"}
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            assert isinstance(ev["name"], str) and ev["name"]
            if ev["ph"] == "M":
                continue
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            if ev["ph"] == "X":
                assert isinstance(ev["dur"], (int, float))
                assert ev["dur"] >= 0
            else:
                assert ev["s"] == "t"

    def test_validator_flags_broken_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": 3}) != []
        errors = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0},
                    {"ph": "?", "name": "b", "pid": 1, "tid": 1},
                    {"ph": "i", "name": "", "pid": "x", "tid": 1, "ts": -1},
                ]
            }
        )
        # missing dur, unknown phase, bad name/pid/ts, unnamed tracks
        assert len(errors) >= 5

    def test_cli_gate(self, served, tmp_path, capsys):
        tracer, report, _ = served
        good = tmp_path / "good.json"
        write_chrome_trace(good, tracer, results=report.results)
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "?"}]}')
        assert export_main([str(good)]) == 0
        assert export_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "OK" in out and "FAIL" in out


class TestTracks:
    def test_per_device_per_tenant_and_tracer_tracks(self, served):
        _, _, doc = served
        processes = set(_metadata(doc, "process_name").values())
        assert {"device:slot0", "device:slot1", "tenants", "tracer"} <= (
            processes
        )
        threads = set(_metadata(doc, "thread_name").values())
        assert {"alice", "bob"} <= threads
        assert "service" in threads  # tracer's admission/batch track

    def test_device_events_match_timeline_exactly(self, served):
        tracer, _, doc = served
        pid_names = _metadata(doc, "process_name")
        for engine in tracer.engines:
            pid = next(
                p
                for p, n in pid_names.items()
                if n == f"device:{engine._obs_name}"
            )
            got = {
                (ev["name"], ev["ts"], ev["dur"])
                for ev in doc["traceEvents"]
                if ev["ph"] == "X" and ev["pid"] == pid
            }
            want = {
                (
                    rec.label or rec.kind.value,
                    rec.start * _SCALE,
                    rec.duration * _SCALE,
                )
                for rec in engine.timeline.records
            }
            # exact float equality: µs = seconds x 1e6, no rounding
            assert got == want
            assert len(got) > 0

    def test_one_request_event_per_result(self, served):
        _, report, doc = served
        pid_names = _metadata(doc, "process_name")
        tenants_pid = next(
            p for p, n in pid_names.items() if n == "tenants"
        )
        requests = [
            ev
            for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev["pid"] == tenants_pid
        ]
        assert len(requests) == len(report.results)
        by_id = {ev["args"]["request_id"]: ev for ev in requests}
        for res in report.results:
            ev = by_id[res.request_id]
            assert ev["ts"] == res.start_time * _SCALE
            assert ev["dur"] == (res.finish_time - res.start_time) * _SCALE
            assert ev["args"]["batch_size"] == res.batch_size

    def test_service_track_mirrors_admission_and_batching(self, served):
        tracer, report, _ = served
        admits = [
            e
            for e in tracer.events
            if e.track == "service" and e.name == "admit"
        ]
        batches = [
            e
            for e in tracer.events
            if e.track == "service" and e.name == "batch"
        ]
        assert len(admits) == len(report.results)
        assert len(batches) == report.metrics.batches


class TestNesting:
    def test_nested_spans_are_contained_in_their_parents(self, served):
        tracer, _, _ = served
        events = tracer.events
        deep = [
            (i, e)
            for i, e in enumerate(events)
            if e.ph == "X" and e.depth > 0
        ]
        assert deep, "the serving run must produce nested spans"
        for i, inner in deep:
            # the enclosing span closes after its children, so it is
            # appended later; its virtual interval must contain inner's
            parent = next(
                (
                    e
                    for e in events[i + 1:]
                    if e.ph == "X"
                    and e.track == inner.track
                    and e.depth == inner.depth - 1
                ),
                None,
            )
            assert parent is not None, f"no parent span for {inner.name}"
            # recorded inside the parent's wall-time window...
            assert parent.wall <= inner.wall
            assert inner.wall <= parent.wall + parent.wall_dur
            # ...and finishing within the parent's virtual window (an
            # op may have *started* before the enclosing sync span, but
            # whatever completes inside it completes before it closes)
            assert inner.vt + inner.dur <= parent.vt + parent.dur


class TestJsonl:
    def test_jsonl_round_trip(self, served, tmp_path):
        tracer, _, _ = served
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(path, tracer)
        assert count == len(tracer.events)
        lines = path.read_text().splitlines()
        assert len(lines) == count
        first = json.loads(lines[0])
        assert {"name", "track", "ph", "vt", "dur", "depth"} <= set(first)
