"""Tests for the CUDA Graphs API baseline."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.core.race import check_no_races
from repro.gpusim import Device, SimEngine, GTX960, GTX1660_SUPER
from repro.gpusim.timeline import IntervalKind
from repro.graphs import CudaGraph, StreamCapture
from repro.kernels import LinearCostModel, build_kernel
from repro.memory import DeviceArray

N = 1 << 20
COST = LinearCostModel(
    flops_per_item=1.0, dram_bytes_per_item=8.0, instructions_per_item=4.0
)


def kernels():
    square = build_kernel(
        lambda x, n: np.square(x[:n], out=x[:n]), "square", "ptr, sint32",
        cost_model=COST,
    )
    vsum = build_kernel(
        lambda x, y, z, n: z.__setitem__(0, float(np.sum(x[:n] - y[:n]))),
        "sum",
        "const ptr, const ptr, ptr, sint32",
        cost_model=COST,
    )
    return square, vsum


def build_vec_graph():
    square, vsum = kernels()
    X, Y, Z = DeviceArray(N, name="X"), DeviceArray(N, name="Y"), DeviceArray(1, name="Z")
    g = CudaGraph("vec")
    n1 = g.add_kernel_node(square, 256, 256, (X, N))
    n2 = g.add_kernel_node(square, 256, 256, (Y, N))
    n3 = g.add_kernel_node(vsum, 256, 256, (X, Y, Z, N), deps=[n1, n2])
    return g, (X, Y, Z), (n1, n2, n3)


class TestGraphConstruction:
    def test_foreign_dependency_rejected(self):
        square, _ = kernels()
        g1, g2 = CudaGraph("a"), CudaGraph("b")
        X = DeviceArray(N)
        n = g1.add_kernel_node(square, 1, 32, (X, N))
        with pytest.raises(GraphError):
            g2.add_kernel_node(square, 1, 32, (X, N), deps=[n])

    def test_empty_graph_not_instantiable(self):
        with pytest.raises(GraphError):
            CudaGraph("e").instantiate()

    def test_empty_node(self):
        square, _ = kernels()
        g = CudaGraph()
        n1 = g.add_kernel_node(square, 1, 32, (DeviceArray(N), N))
        n2 = g.add_empty_node(deps=[n1])
        assert n2.deps == (n1,)


class TestStreamPlan:
    def test_independent_roots_get_distinct_streams(self):
        g, _, (n1, n2, n3) = build_vec_graph()
        g.instantiate()
        assert n1.stream_index != n2.stream_index

    def test_first_child_inherits_stream(self):
        g, _, (n1, n2, n3) = build_vec_graph()
        g.instantiate()
        assert n3.stream_index == n1.stream_index

    def test_events_flagged_for_cross_stream_edges(self):
        g, _, (n1, n2, n3) = build_vec_graph()
        g.instantiate()
        assert n2.needs_event      # n3 is on n1's stream, waits on n2
        assert not n1.needs_event  # same-stream child: FIFO suffices


class TestGraphLaunch:
    def test_functional_result(self):
        g, (X, Y, Z), _ = build_vec_graph()
        exe = g.instantiate()
        X.kernel_view[:] = 2.0
        Y.kernel_view[:] = 3.0
        X.mark_cpu_write()
        Y.mark_cpu_write()
        engine = SimEngine(Device(GTX1660_SUPER))
        exe.launch(engine)
        engine.sync_all()
        assert Z.kernel_view[0] == pytest.approx(N * (4.0 - 9.0))

    def test_dependencies_respected(self):
        g, arrays, _ = build_vec_graph()
        exe = g.instantiate()
        engine = SimEngine(Device(GTX1660_SUPER))
        exe.launch(engine)
        engine.sync_all()
        recs = {r.label: r for r in engine.timeline.kernels()}
        assert recs["sum"].start >= max(
            r.end for k, r in recs.items() if k == "square"
        )
        check_no_races(engine.timeline)

    def test_squares_overlap(self):
        g, arrays, _ = build_vec_graph()
        exe = g.instantiate()
        engine = SimEngine(Device(GTX1660_SUPER))
        exe.launch(engine)
        engine.sync_all()
        squares = [
            r for r in engine.timeline.kernels() if r.label == "square"
        ]
        assert squares[0].overlaps(squares[1])

    def test_repeated_launches(self):
        g, arrays, _ = build_vec_graph()
        exe = g.instantiate()
        engine = SimEngine(Device(GTX1660_SUPER))
        for _ in range(3):
            exe.launch(engine)
        engine.sync_all()
        assert exe.launch_count == 3
        assert len(engine.timeline.kernels()) == 9

    def test_no_prefetch_on_pascal_uses_faults(self):
        g, (X, Y, Z), _ = build_vec_graph()
        exe = g.instantiate()
        X.mark_cpu_write()
        engine = SimEngine(Device(GTX1660_SUPER))
        exe.launch(engine)
        engine.sync_all()
        htod = [
            r
            for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert htod == []  # no prefetch: page faults instead
        faults = sum(
            r.meta["resources"].fault_bytes
            for r in engine.timeline.kernels()
        )
        assert faults == pytest.approx(X.nbytes)

    def test_maxwell_inserts_eager_copies(self):
        g, (X, Y, Z), _ = build_vec_graph()
        exe = g.instantiate()
        X.mark_cpu_write()
        engine = SimEngine(Device(GTX960))
        exe.launch(engine)
        engine.sync_all()
        htod = [
            r
            for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert len(htod) == 1
        assert htod[0].nbytes == X.nbytes


class TestStreamCapture:
    def capture_vec(self):
        square, vsum = kernels()
        X, Y, Z = DeviceArray(N, name="X"), DeviceArray(N, name="Y"), DeviceArray(1, name="Z")
        cap = StreamCapture("vec-cap")
        s1, s2 = cap.stream(), cap.stream()
        cap.launch(s1, square, 256, 256, (X, N))
        cap.launch(s2, square, 256, 256, (Y, N))
        ev = cap.record_event(s2)
        cap.wait_event(s1, ev)
        cap.launch(s1, vsum, 256, 256, (X, Y, Z, N))
        return cap.end_capture(), (X, Y, Z)

    def test_capture_builds_equivalent_graph(self):
        g, _ = self.capture_vec()
        assert len(g.nodes) == 3
        n3 = g.nodes[2]
        assert {d.label for d in n3.deps} == {"square"}
        assert len(n3.deps) == 2

    def test_captured_graph_runs(self):
        g, (X, Y, Z) = self.capture_vec()
        exe = g.instantiate()
        X.kernel_view[:] = 2.0
        Y.kernel_view[:] = 3.0
        engine = SimEngine(Device(GTX1660_SUPER))
        exe.launch(engine)
        engine.sync_all()
        assert Z.kernel_view[0] == pytest.approx(N * (4.0 - 9.0))
        check_no_races(engine.timeline)

    def test_capture_after_end_rejected(self):
        g, _ = self.capture_vec()
        square, _ = kernels()

    def test_double_end_rejected(self):
        square, vsum = kernels()
        cap = StreamCapture()
        s = cap.stream()
        cap.launch(s, square, 1, 32, (DeviceArray(N), N))
        cap.end_capture()
        with pytest.raises(GraphError):
            cap.end_capture()

    def test_empty_capture_rejected(self):
        cap = StreamCapture()
        cap.stream()
        with pytest.raises(GraphError):
            cap.end_capture()


class TestBackToBackAsyncLaunches:
    def test_no_duplicate_eager_copies_across_async_launches(self):
        """launch() is asynchronous: a second launch submitted before the
        first drains must not re-plan the eager copies the first already
        has in flight (Maxwell path, where movement is eager)."""
        g, (X, Y, Z), _ = build_vec_graph()
        X.mark_cpu_write()
        Y.mark_cpu_write()
        engine = SimEngine(Device(GTX960))
        exe = g.instantiate()
        exe.launch(engine)
        exe.launch(engine)  # no sync in between
        engine.sync_all()
        htod = [
            r for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert len(htod) == 2  # X and Y once each, not per launch
        # (Unsynchronized replays of one graph overlap *kernel* work by
        # design, as on real hardware when the two cudaGraphLaunch calls
        # target different streams — only the movement must not double.)

    def test_no_double_fault_charge_across_async_launches(self):
        g, (X, Y, Z), _ = build_vec_graph()
        X.mark_cpu_write()
        Y.mark_cpu_write()
        engine = SimEngine(Device(GTX1660_SUPER))
        exe = g.instantiate()
        exe.launch(engine)
        exe.launch(engine)
        engine.sync_all()
        fault = sum(
            r.meta["resources"].fault_bytes
            for r in engine.timeline.kernels()
        )
        assert fault == 2 * N * 4  # first launch only
