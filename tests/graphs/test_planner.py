"""Tests for the shared static stream planner."""

from hypothesis import given, settings, strategies as st

from repro.graphs.planner import plan_streams


class TestBasicShapes:
    def test_single_node(self):
        [step] = plan_streams([[]])
        assert step.stream == 0
        assert step.waits == ()
        assert not step.record_event

    def test_chain_stays_on_one_stream(self):
        plan = plan_streams([[], [0], [1], [2]])
        assert {s.stream for s in plan} == {0}
        assert all(s.waits == () for s in plan)

    def test_independent_roots_get_distinct_streams(self):
        plan = plan_streams([[], [], []])
        assert [s.stream for s in plan] == [0, 1, 2]

    def test_join_waits_on_other_stream(self):
        # a; b; c(a, b): c inherits a's stream, waits on b.
        plan = plan_streams([[], [], [0, 1]])
        assert plan[2].stream == plan[0].stream
        assert plan[2].waits == (1,)
        assert plan[1].record_event
        assert not plan[0].record_event

    def test_fork_second_child_new_stream(self):
        # a; b(a); c(a): b inherits, c opens a stream.
        plan = plan_streams([[], [0], [0]])
        assert plan[1].stream == plan[0].stream
        assert plan[2].stream != plan[0].stream
        assert plan[2].waits == (0,)

    def test_ancestor_stream_reused(self):
        # Diamond a -> (b, c) -> d, then another diamond: the second
        # diamond must reuse the first's streams, not leak new ones.
        parents = [[], [0], [0], [1, 2]]
        parents += [[3], [4], [4], [5, 6]]
        plan = plan_streams(parents)
        assert 1 + max(s.stream for s in plan) == 2

    def test_iterated_pipeline_bounded_streams(self):
        # HITS-like: two chains cross-synchronized per step, 10 steps.
        parents = []
        for step in range(10):
            base = step * 2
            if step == 0:
                parents += [[], []]
            else:
                parents += [
                    [base - 2, base - 1],
                    [base - 1, base - 2],
                ]
        plan = plan_streams(parents)
        assert 1 + max(s.stream for s in plan) == 2


forests = st.integers(1, 24).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.lists(st.integers(0, max(0, n - 1)), max_size=3),
            min_size=n,
            max_size=n,
        ),
    )
)


def normalize(n, raw):
    """Clamp parent indices to be strictly smaller than the node's."""
    return [
        sorted({p for p in parents if p < i}) for i, parents in enumerate(raw)
    ]


class TestPlannerProperties:
    @given(forests)
    @settings(max_examples=200, deadline=None)
    def test_waits_are_cross_stream_and_backward(self, data):
        n, raw = data
        parents = normalize(n, raw)
        plan = plan_streams(parents)
        for step in plan:
            for w in step.waits:
                assert w < step.index
                assert plan[w].stream != step.stream
                assert plan[w].record_event

    @given(forests)
    @settings(max_examples=200, deadline=None)
    def test_every_parent_ordered(self, data):
        """Each parent is ordered before its child: either same stream
        (FIFO) and earlier, or through an event wait."""
        n, raw = data
        parents = normalize(n, raw)
        plan = plan_streams(parents)
        for i, ps in enumerate(parents):
            for p in ps:
                same_stream = plan[p].stream == plan[i].stream
                waited = p in plan[i].waits
                assert same_stream or waited

    @given(forests)
    @settings(max_examples=200, deadline=None)
    def test_stream_count_bounded_by_width(self, data):
        """Never more streams than nodes, and chains never leak."""
        n, raw = data
        parents = normalize(n, raw)
        plan = plan_streams(parents)
        assert 1 + max(s.stream for s in plan) <= n
