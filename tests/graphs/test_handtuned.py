"""Tests for the hand-tuned CUDA-events baseline."""

import numpy as np
import pytest

from repro.core.race import check_no_races
from repro.gpusim import Device, SimEngine, GTX1660_SUPER
from repro.gpusim.ops import TransferKind
from repro.graphs import HandTunedScheduler
from repro.kernels import LinearCostModel, build_kernel
from repro.memory import DeviceArray

N = 1 << 20
# Compute-heavy enough that kernels outlast the DMA-serialized input
# transfers, so the two towers of the schedule visibly overlap.
COST = LinearCostModel(
    flops_per_item=3000.0,
    dram_bytes_per_item=8.0,
    instructions_per_item=4.0,
)


@pytest.fixture
def engine():
    return SimEngine(Device(GTX1660_SUPER))


def make_kernels():
    square = build_kernel(
        lambda x, n: np.square(x[:n], out=x[:n]), "square", "ptr, sint32",
        cost_model=COST,
    )
    vsum = build_kernel(
        lambda x, y, z, n: z.__setitem__(0, float(np.sum(x[:n] - y[:n]))),
        "sum",
        "const ptr, const ptr, ptr, sint32",
        cost_model=COST,
    )
    return square, vsum


def run_handtuned_vec(engine, prefetch=True):
    square, vsum = make_kernels()
    X, Y, Z = DeviceArray(N, name="X"), DeviceArray(N, name="Y"), DeviceArray(1, name="Z")
    X.kernel_view[:] = 2.0
    Y.kernel_view[:] = 3.0
    X.mark_cpu_write()
    Y.mark_cpu_write()
    ht = HandTunedScheduler(engine)
    s1, s2 = ht.stream(), ht.stream()
    if prefetch:
        ht.prefetch(X, s1)
        ht.prefetch(Y, s2)
    ht.launch(s1, square, 256, 256, (X, N))
    ht.launch(s2, square, 256, 256, (Y, N))
    ev = ht.record_event(s2)
    ht.wait_event(s1, ev)
    ht.launch(s1, vsum, 256, 256, (X, Y, Z, N))
    ht.sync()
    return X, Y, Z


class TestHandTuned:
    def test_functional_result(self, engine):
        _, _, Z = run_handtuned_vec(engine)
        assert Z.kernel_view[0] == pytest.approx(N * (4.0 - 9.0))

    def test_no_races(self, engine):
        run_handtuned_vec(engine)
        check_no_races(engine.timeline)

    def test_prefetch_creates_transfers(self, engine):
        run_handtuned_vec(engine, prefetch=True)
        prefetches = [
            r
            for r in engine.timeline.transfers()
            if r.meta.get("kind") is TransferKind.PREFETCH
        ]
        assert len(prefetches) == 2

    def test_without_prefetch_pays_faults(self, engine):
        run_handtuned_vec(engine, prefetch=False)
        faults = sum(
            r.meta["resources"].fault_bytes
            for r in engine.timeline.kernels()
        )
        assert faults == pytest.approx(2 * N * 4)

    def test_prefetch_faster_than_faults(self):
        e1 = SimEngine(Device(GTX1660_SUPER))
        run_handtuned_vec(e1, prefetch=True)
        e2 = SimEngine(Device(GTX1660_SUPER))
        run_handtuned_vec(e2, prefetch=False)
        assert e1.timeline.makespan < e2.timeline.makespan

    def test_prefetch_noop_when_resident(self, engine):
        ht = HandTunedScheduler(engine)
        s = ht.stream()
        X = DeviceArray(N)
        ht.prefetch(X, s)  # fresh UM array: already SHARED
        assert engine.timeline.transfers() == []

    def test_squares_overlap(self, engine):
        run_handtuned_vec(engine)
        squares = [
            r for r in engine.timeline.kernels() if r.label == "square"
        ]
        assert squares[0].overlaps(squares[1])
