"""Functional correctness of every benchmark under every execution mode.

The key metamorphic property: all five schedulers must compute the exact
same results, and those results must match an independent numpy
reference.  Any dependency-inference bug breaks this.
"""

import pytest

from repro.workloads import Mode, create_benchmark
from tests.workloads.conftest import TEST_SCALES


def run_mode(name, mode, gpu="1660", iterations=2, **kw):
    bench = create_benchmark(
        name, TEST_SCALES[name], iterations=iterations, **kw
    )
    result = bench.run(gpu, mode)
    return bench, result


class TestAgainstReference:
    @pytest.mark.parametrize("mode", list(Mode))
    def test_matches_reference(self, bench_name, mode):
        bench, result = run_mode(bench_name, mode)
        expected = [bench.reference(i) for i in range(bench.iterations)]
        for got, want in zip(result.results, expected):
            assert got == pytest.approx(want, rel=1e-4, abs=1e-5), (
                f"{bench_name} under {mode.value}"
            )

    def test_all_modes_agree_exactly(self, bench_name):
        outcomes = {}
        for mode in Mode:
            _, result = run_mode(bench_name, mode)
            outcomes[mode] = tuple(result.results)
        baseline = outcomes[Mode.SERIAL]
        for mode, values in outcomes.items():
            assert values == baseline, f"{mode.value} diverged"


class TestAcrossGPUs:
    @pytest.mark.parametrize("gpu", ["960", "1660", "P100"])
    def test_results_gpu_independent(self, bench_name, gpu):
        bench, result = run_mode(bench_name, Mode.PARALLEL, gpu=gpu)
        expected = [bench.reference(i) for i in range(bench.iterations)]
        for got, want in zip(result.results, expected):
            assert got == pytest.approx(want, rel=1e-4, abs=1e-5)


class TestDeterminism:
    def test_same_seed_same_results(self, bench_name):
        _, r1 = run_mode(bench_name, Mode.PARALLEL)
        _, r2 = run_mode(bench_name, Mode.PARALLEL)
        assert r1.results == r2.results
        assert r1.elapsed == r2.elapsed  # virtual time is deterministic

    def test_different_seed_different_inputs(self, bench_name):
        if bench_name == "hits":
            pytest.skip("HITS resets its vectors to ones every iteration")
        _, r1 = run_mode(bench_name, Mode.PARALLEL, seed=1)
        _, r2 = run_mode(bench_name, Mode.PARALLEL, seed=2)
        assert r1.results != r2.results
