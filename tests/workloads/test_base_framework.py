"""Tests for the benchmark framework plumbing itself."""

import numpy as np
import pytest

from repro.workloads import Mode, create_benchmark
from repro.workloads.base import ArraySpec, _BaselineHost
from repro.gpusim import Device, SimEngine, GTX1660_SUPER
from repro.memory import DeviceArray


class TestArraySpec:
    def test_nbytes_1d(self):
        assert ArraySpec(100, np.float32).nbytes == 400

    def test_nbytes_2d(self):
        assert ArraySpec((10, 20), np.float64).nbytes == 1600


class TestModeEnum:
    def test_grcuda_flags(self):
        assert Mode.SERIAL.is_grcuda
        assert Mode.PARALLEL.is_grcuda
        assert not Mode.GRAPH_MANUAL.is_grcuda
        assert not Mode.HANDTUNED.is_grcuda

    def test_five_modes(self):
        assert len(Mode) == 5


class TestBenchmarkPlumbing:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            create_benchmark("vec", 0)

    def test_dl_scale_rounded_even(self):
        bench = create_benchmark("dl", 65)
        assert bench.scale == 64

    def test_dl_too_small_rejected(self):
        with pytest.raises(ValueError):
            create_benchmark("dl", 3)

    def test_per_iteration(self):
        bench = create_benchmark("vec", 50_000, iterations=4)
        result = bench.run("1660", Mode.PARALLEL)
        assert result.per_iteration == pytest.approx(result.elapsed / 4)

    def test_rng_deterministic_per_iteration(self):
        bench = create_benchmark("vec", 100)
        a = bench.rng(3).uniform(size=5)
        b = bench.rng(3).uniform(size=5)
        c = bench.rng(4).uniform(size=5)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_record_and_read_inputs(self):
        bench = create_benchmark("vec", 100)
        bench.record_inputs(0, x=np.ones(3))
        bench.record_inputs(2, y=np.zeros(2))  # gap-filling
        assert list(bench.inputs(0)) == ["x"]
        assert list(bench.inputs(2)) == ["y"]
        assert bench.inputs(1) == {}

    def test_load_input_execute_mode_copies(self):
        bench = create_benchmark("vec", 100, execute=True)
        arr = DeviceArray(100, name="x")
        data = bench.load_input(
            0, arr, lambda: np.full(100, 7.0, dtype=np.float32), record="x"
        )
        assert data is not None
        assert arr.kernel_view[0] == 7.0
        assert "x" in bench.inputs(0)

    def test_load_input_timing_mode_skips_generation(self):
        bench = create_benchmark("vec", 100, execute=False)
        arr = DeviceArray(100, name="x", materialize=False)

        def boom():
            raise AssertionError("must not generate data in timing mode")

        assert bench.load_input(0, arr, boom) is None
        # The write was still announced: device copy invalidated.
        assert arr.stale_device_bytes() == arr.nbytes


class TestBaselineHost:
    def test_syncs_busy_engine_before_access(self):
        from repro.gpusim.ops import KernelOp, KernelResourceRequest

        engine = SimEngine(Device(GTX1660_SUPER))
        host = _BaselineHost(engine)
        arr = DeviceArray(100, name="a")
        arr.set_access_hook(host.hook)
        engine.submit(
            engine.default_stream,
            KernelOp(
                label="busy",
                resources=KernelResourceRequest(
                    flops=3.8e9, fp64=False, dram_bytes=0, l2_bytes=0,
                    instructions=0, threads_total=1 << 20,
                ),
            ),
        )
        assert not engine.idle
        arr[0] = 1.0
        assert engine.idle  # hook synchronized first

    def test_charges_readback_for_stale_host(self):
        engine = SimEngine(Device(GTX1660_SUPER))
        host = _BaselineHost(engine)
        arr = DeviceArray(1 << 20, name="a")
        arr.set_access_hook(host.hook)
        arr.mark_gpu_write()
        before = engine.clock
        _ = arr[0]
        assert engine.clock > before
        assert len(engine.timeline.transfers()) == 1

    def test_full_overwrite_skips_readback(self):
        engine = SimEngine(Device(GTX1660_SUPER))
        host = _BaselineHost(engine)
        arr = DeviceArray(1 << 20, name="a")
        arr.set_access_hook(host.hook)
        arr.mark_gpu_write()
        arr.copy_from_host(np.zeros(1 << 20, dtype=np.float32))
        assert engine.timeline.transfers() == []  # invalidate, not move
