"""Cross-cutting scheduler invariants over the whole benchmark grid.

These are the regression net for the paper's two strongest claims:

* the parallel scheduler is **never slower** than the serial one;
* the automatic scheduler is **never significantly slower** than any
  hand-optimized baseline.

Run at reduced scales (timing-only) so the whole grid fits in the unit
suite; the full-scale versions live in ``benchmarks/``.
"""

import pytest

from repro.core.race import check_no_races
from repro.metrics import compute_hardware_metrics
from repro.gpusim.specs import gpu_by_name
from repro.workloads import BENCHMARKS, Mode, create_benchmark

#: reduced scales (~1/10 of the smallest paper point): fast but still
#: kernel-dominated
SMALL_SCALES = {
    "vec": 2_000_000,
    "b&s": 200_000,
    "img": 512,
    "ml": 20_000,
    "hits": 400_000,
    "dl": 512,
}

GPUS = ["GTX 960", "GTX 1660 Super", "Tesla P100"]


def run(name, gpu, mode):
    bench = create_benchmark(
        name, SMALL_SCALES[name], iterations=3, execute=False
    )
    return bench.run(gpu, mode)


@pytest.mark.parametrize("gpu", GPUS)
@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestGridInvariants:
    def test_parallel_never_slower_than_serial(self, name, gpu):
        serial = run(name, gpu, Mode.SERIAL)
        parallel = run(name, gpu, Mode.PARALLEL)
        assert parallel.elapsed <= serial.elapsed * 1.02

    def test_parallel_race_free(self, name, gpu):
        check_no_races(run(name, gpu, Mode.PARALLEL).timeline)

    def test_counters_mode_invariant(self, name, gpu):
        spec = gpu_by_name(gpu)
        hw_s = compute_hardware_metrics(
            run(name, gpu, Mode.SERIAL).timeline, spec
        )
        hw_p = compute_hardware_metrics(
            run(name, gpu, Mode.PARALLEL).timeline, spec
        )
        assert hw_s.total_flops == pytest.approx(hw_p.total_flops)
        assert hw_s.total_dram_bytes == pytest.approx(
            hw_p.total_dram_bytes
        )


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestBaselineParity:
    def test_never_significantly_slower_than_handtuned(self, name):
        grcuda = run(name, "GTX 1660 Super", Mode.PARALLEL)
        tuned = run(name, "GTX 1660 Super", Mode.HANDTUNED)
        # "no significant slowdown against hand-optimized scheduling"
        assert grcuda.elapsed <= tuned.elapsed * 1.15

    def test_beats_or_matches_graph_api(self, name):
        grcuda = run(name, "GTX 1660 Super", Mode.PARALLEL)
        graph = run(name, "GTX 1660 Super", Mode.GRAPH_MANUAL)
        assert grcuda.elapsed <= graph.elapsed * 1.10
