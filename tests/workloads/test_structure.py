"""Structural properties: Fig. 6 DAG shapes, stream counts, race freedom,
Table I memory footprints, suite registry."""

import pytest

from repro.core.race import check_no_races
from repro.gpusim.specs import ALL_GPUS, GTX960, GTX1660_SUPER, TESLA_P100
from repro.workloads import BENCHMARKS, Mode, create_benchmark, default_scales
from repro.workloads.suite import PAPER_SCALES
from tests.workloads.conftest import TEST_SCALES


def make(name, **kw):
    kw.setdefault("iterations", 2)
    return create_benchmark(name, TEST_SCALES[name], **kw)


class TestSuiteRegistry:
    def test_six_benchmarks(self):
        assert len(BENCHMARKS) == 6
        assert set(BENCHMARKS) == {"vec", "b&s", "img", "ml", "hits", "dl"}

    def test_bs_alias(self):
        assert create_benchmark("bs", 1000).name == "b&s"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            create_benchmark("nope", 1000)

    def test_kernel_inventory(self):
        # The paper evaluates "a total of 33 different kernels"; our
        # suite declares a comparable inventory of distinct kernels.
        total = sum(
            make(name).distinct_kernel_count() for name in BENCHMARKS
        )
        assert 25 <= total <= 40

    def test_launches_per_iteration(self):
        expected = {
            "vec": 3,
            "b&s": 10,
            "img": 11,
            "ml": 9,
            "hits": 60,  # 10 inner steps x 6 launches
            "dl": 8,
        }
        for name, count in expected.items():
            assert make(name).kernel_count_per_iteration() == count


class TestStaticPlans:
    """The derived static schedules must match Fig. 6's stream counts."""

    @pytest.mark.parametrize(
        "name, streams",
        [
            ("vec", 2),
            ("b&s", 10),
            ("img", 4),
            ("ml", 2),
            ("hits", 2),
            ("dl", 2),
        ],
    )
    def test_stream_counts_match_fig6(self, name, streams):
        plan = make(name).static_plan()
        assert 1 + max(s.stream for s in plan) == streams

    def test_plan_waits_are_cross_stream(self, bench_name):
        plan = make(bench_name).static_plan()
        for step in plan:
            for w in step.waits:
                assert plan[w].stream != step.stream
                assert plan[w].record_event

    def test_plan_waits_point_backwards(self, bench_name):
        plan = make(bench_name).static_plan()
        for step in plan:
            assert all(w < step.index for w in step.waits)


class TestRaceFreedom:
    @pytest.mark.parametrize(
        "mode", [Mode.PARALLEL, Mode.GRAPH_MANUAL, Mode.HANDTUNED]
    )
    def test_no_races(self, bench_name, mode):
        result = make(bench_name).run("1660", mode)
        check_no_races(result.timeline)

    def test_no_races_on_all_gpus(self, bench_name):
        for gpu in ("960", "1660", "P100"):
            result = make(bench_name).run(gpu, Mode.PARALLEL)
            check_no_races(result.timeline)


class TestParallelStructure:
    def test_vec_uses_two_streams(self):
        result = make("vec").run("1660", Mode.PARALLEL)
        assert result.stream_count == 2

    def test_bs_uses_ten_streams(self):
        # At realistic scales the ten option chains outlive the host's
        # submission loop, so the FIFO policy cannot reuse streams and
        # all ten run concurrently (Fig. 6).  (At toy scales kernels
        # retire between submissions and streams get reused — also
        # correct, but not what this test checks.)
        bench = create_benchmark(
            "b&s", 2_000_000, iterations=2, execute=False
        )
        result = bench.run("1660", Mode.PARALLEL)
        assert result.stream_count == 10

    def test_serial_single_stream(self, bench_name):
        result = make(bench_name).run("1660", Mode.SERIAL)
        assert result.stream_count == 1


class TestTableI:
    """Table I: memory footprints across GPUs and scales."""

    def test_min_scales_fit_every_gpu(self):
        for name, scales in PAPER_SCALES.items():
            bench = BENCHMARKS[name](scales[0], execute=False)
            fp = bench.memory_footprint_bytes()
            for gpu in ALL_GPUS:
                assert fp < gpu.device_memory_bytes, (
                    f"{name}@{scales[0]} does not fit {gpu.name}"
                )

    def test_max_scales_fit_only_large_gpus(self):
        for name, scales in PAPER_SCALES.items():
            bench = BENCHMARKS[name](scales[-1], execute=False)
            fp = bench.memory_footprint_bytes()
            assert fp > GTX960.device_memory_bytes, (
                f"{name}@{scales[-1]} should exceed the GTX 960's memory"
            )
            assert fp <= TESLA_P100.device_memory_bytes

    def test_default_scales_respect_memory(self):
        for name in PAPER_SCALES:
            for gpu in ALL_GPUS:
                for s in default_scales(name, gpu):
                    bench = BENCHMARKS[name](s, execute=False)
                    assert (
                        bench.memory_footprint_bytes()
                        <= 0.92 * gpu.device_memory_bytes
                    )

    def test_larger_gpus_get_more_points(self):
        for name in PAPER_SCALES:
            n960 = len(default_scales(name, GTX960))
            n1660 = len(default_scales(name, GTX1660_SUPER))
            np100 = len(default_scales(name, TESLA_P100))
            assert n960 <= n1660 <= np100
            assert np100 >= 4


class TestTimingOnlyMode:
    def test_execute_false_runs_without_data(self, bench_name):
        bench = create_benchmark(
            bench_name, TEST_SCALES[bench_name], iterations=2, execute=False
        )
        result = bench.run("1660", Mode.PARALLEL)
        assert result.elapsed > 0

    def test_execute_false_same_timing_as_execute_true(self, bench_name):
        timed = create_benchmark(
            bench_name, TEST_SCALES[bench_name], iterations=2, execute=False
        ).run("1660", Mode.PARALLEL)
        real = create_benchmark(
            bench_name, TEST_SCALES[bench_name], iterations=2, execute=True
        ).run("1660", Mode.PARALLEL)
        assert timed.elapsed == pytest.approx(real.elapsed, rel=1e-9)
