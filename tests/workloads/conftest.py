"""Shared fixtures for the workload tests.

Test scales are tiny (so functional numpy execution stays fast); the
timing experiments of the ``benchmarks/`` tree use the paper's scales
with functional execution disabled.
"""

import pytest

#: small-but-nontrivial scales per benchmark
TEST_SCALES = {
    "vec": 50_000,
    "b&s": 10_000,
    "img": 96,
    "ml": 1_000,
    "hits": 2_000,
    "dl": 64,
}


@pytest.fixture(params=sorted(TEST_SCALES))
def bench_name(request):
    return request.param
