"""Unit tests for the workload kernels themselves: functional math
against independent references, and cost-model sanity."""

import numpy as np
import pytest

from repro.workloads import BENCHMARKS, create_benchmark
from repro.workloads.bs import (
    MATURITY,
    RISK_FREE,
    STRIKE,
    VOLATILITY,
    black_scholes_call,
)
from repro.workloads.hits import AVG_DEGREE, build_csr
from repro.workloads.img import _combine, _extend, _sobel, _unsharpen
from repro.workloads.ml import _argmax, _norm, _softmax, _standardize
from repro.workloads.dl import _conv, _pool


class TestBlackScholesMath:
    def test_deep_in_the_money_approaches_intrinsic(self):
        s = np.array([300.0])
        price = black_scholes_call(s)[0]
        intrinsic = 300.0 - STRIKE * np.exp(-RISK_FREE * MATURITY)
        assert price == pytest.approx(intrinsic, rel=1e-6)

    def test_deep_out_of_the_money_near_zero(self):
        assert black_scholes_call(np.array([1.0]))[0] < 1e-8

    def test_price_bounds(self):
        s = np.linspace(5, 100, 50)
        c = black_scholes_call(s)
        # 0 <= C <= S and C >= S - K e^{-rT}.
        assert np.all(c >= -1e-12)
        assert np.all(c <= s + 1e-12)
        assert np.all(c >= s - STRIKE * np.exp(-RISK_FREE) - 1e-9)

    def test_monotonic_in_spot(self):
        s = np.linspace(10, 60, 100)
        c = black_scholes_call(s)
        assert np.all(np.diff(c) > 0)

    def test_put_call_parity_via_forward(self):
        # C - P = S - K e^{-rT}; recompute P via the same formula with
        # reversed ndtr arguments to validate internal consistency.
        from scipy.special import ndtr

        s = np.array([25.0, 30.0, 35.0])
        sqrt_t = np.sqrt(MATURITY)
        d1 = (
            np.log(s / STRIKE)
            + (RISK_FREE + 0.5 * VOLATILITY**2) * MATURITY
        ) / (VOLATILITY * sqrt_t)
        d2 = d1 - VOLATILITY * sqrt_t
        put = STRIKE * np.exp(-RISK_FREE * MATURITY) * ndtr(-d2) - s * ndtr(
            -d1
        )
        call = black_scholes_call(s)
        parity = call - put
        assert parity == pytest.approx(
            s - STRIKE * np.exp(-RISK_FREE * MATURITY), rel=1e-10
        )


class TestImageKernels:
    def test_sobel_flat_image_zero_gradient(self):
        img = np.full((16, 16), 0.5, dtype=np.float32)
        out = np.empty_like(img)
        _sobel(img, out, 16)
        assert np.allclose(out, 0.0)

    def test_sobel_detects_edge(self):
        img = np.zeros((16, 16), dtype=np.float32)
        img[:, 8:] = 1.0
        out = np.empty_like(img)
        _sobel(img, out, 16)
        assert out[8, 8] > 0.5
        assert out[8, 0] == pytest.approx(0.0, abs=1e-6)

    def test_extend_normalizes_to_unit_range(self):
        rng = np.random.default_rng(0)
        mask = rng.uniform(-3, 7, (8, 8)).astype(np.float32)
        lo = np.array([mask.min()], dtype=np.float32)
        hi = np.array([mask.max()], dtype=np.float32)
        _extend(mask, lo, hi, 8)
        assert mask.min() >= 0.0 and mask.max() <= 1.0

    def test_unsharpen_clips(self):
        img = np.ones((4, 4), dtype=np.float32)
        blurred = np.zeros_like(img)
        out = np.empty_like(img)
        _unsharpen(img, blurred, out, 0.5, 4)
        assert np.all(out <= 1.0)

    def test_combine_is_convex_blend(self):
        a = np.full((4, 4), 1.0, dtype=np.float32)
        b = np.zeros_like(a)
        mask = np.full_like(a, 0.25)
        out = np.empty_like(a)
        _combine(a, b, mask, out, 4)
        assert np.allclose(out, 0.25)


class TestMLKernels:
    def test_softmax_rows_sum_to_one(self):
        m = np.random.default_rng(0).normal(size=(5, 10)).astype(np.float32)
        _softmax(m, 5, 10)
        assert np.allclose(m.sum(axis=1), 1.0, atol=1e-5)
        assert np.all(m >= 0)

    def test_norm_unit_range_per_row(self):
        m = np.random.default_rng(0).normal(size=(5, 10)).astype(np.float32)
        _norm(m, 5, 10)
        assert np.allclose(m.min(axis=1), 0.0, atol=1e-6)
        assert np.allclose(m.max(axis=1), 1.0, atol=1e-5)

    def test_argmax_combines_scores(self):
        r1 = np.zeros((2, 3), dtype=np.float32)
        r2 = np.zeros((2, 3), dtype=np.float32)
        r1[0, 2] = 1.0
        r2[1, 1] = 1.0
        out = np.empty(2, dtype=np.float32)
        _argmax(r1, r2, out, 2, 3)
        assert list(out) == [2.0, 1.0]

    def test_standardize_zero_mean_unit_std(self):
        x = np.random.default_rng(0).normal(
            3.0, 2.0, (1000, 4)
        ).astype(np.float32)
        z = _standardize(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-3)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-2)


class TestDLKernels:
    def test_conv_identity_kernel(self):
        img = np.random.default_rng(0).uniform(
            0, 1, (8, 8)
        ).astype(np.float32)
        w = np.zeros((3, 3), dtype=np.float32)
        w[1, 1] = 1.0
        out = np.empty_like(img)
        _conv(img, w, out, 8)
        assert np.allclose(out, img)  # identity + relu on positives

    def test_conv_relu_clamps_negative(self):
        img = np.ones((4, 4), dtype=np.float32)
        w = np.full((3, 3), -1.0, dtype=np.float32)
        out = np.empty_like(img)
        _conv(img, w, out, 4)
        assert np.all(out == 0.0)

    def test_pool_takes_max(self):
        img = np.arange(16, dtype=np.float32).reshape(4, 4)
        out = np.empty((2, 2), dtype=np.float32)
        _pool(img, out, 4)
        assert out[0, 0] == 5.0   # max of [[0,1],[4,5]]
        assert out[1, 1] == 15.0


class TestHITSGraph:
    def test_uniform_out_degree(self):
        a = build_csr(100, AVG_DEGREE, seed=1)
        degrees = np.diff(a.indptr)
        assert np.all(degrees == AVG_DEGREE)

    def test_deterministic(self):
        a = build_csr(50, 3, seed=7)
        b = build_csr(50, 3, seed=7)
        assert np.array_equal(a.indices, b.indices)

    def test_shape(self):
        a = build_csr(64, 3, seed=0)
        assert a.shape == (64, 64)
        assert a.nnz == 64 * 3


class TestCostModels:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_resources_positive_and_finite(self, name):
        scale = {"img": 64, "dl": 64}.get(name, 10_000)
        bench = create_benchmark(name, scale, execute=False)
        placeholders = {
            n: type(
                "A", (), {"size": s.nbytes // 4, "nbytes": s.nbytes}
            )()
            for n, s in bench.array_specs().items()
        }
        # Use the contention-free machinery to price every invocation.
        from repro.metrics.contention_free import contention_free_time

        t = contention_free_time(bench, "1660")
        assert np.isfinite(t) and t > 0

    def test_only_bs_uses_fp64(self):
        for name, cls in BENCHMARKS.items():
            scale = {"img": 64, "dl": 64}.get(name, 10_000)
            bench = cls(scale, execute=False)
            fp64_kernels = [
                k.name
                for k in bench.kernel_specs()
                if getattr(k.cost, "fp64", False)
            ]
            if name == "b&s":
                assert fp64_kernels == ["bs"]
            else:
                assert fp64_kernels == []
