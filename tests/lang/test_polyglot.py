"""Tests for the polyglot front-end, including the paper's Fig. 4
listing executed verbatim (modulo the CUDA source strings)."""

import numpy as np
import pytest

from repro import GrCUDARuntime
from repro.errors import PolyglotError
from repro.lang import Polyglot


@pytest.fixture
def poly():
    return Polyglot(GrCUDARuntime(gpu="GTX 1660 Super"))


class TestArrayExpressions:
    def test_float_array(self, poly):
        x = poly.eval("grcuda", "float[100]")
        assert x.shape == (100,)
        assert x.dtype == np.float32

    def test_double_array(self, poly):
        x = poly.eval("grcuda", "double[8]")
        assert x.dtype == np.float64

    def test_int_array(self, poly):
        assert poly.eval("grcuda", "int[4]").dtype == np.int32

    def test_2d_array(self, poly):
        x = poly.eval("grcuda", "float[10][20]")
        assert x.shape == (10, 20)

    def test_whitespace_tolerated(self, poly):
        assert poly.eval("grcuda", "  float[ 7 ] ").shape == (7,)

    def test_format_pattern_from_paper(self, poly):
        n = 123
        x = poly.eval("grcuda", "float[{}]".format(n))
        assert x.shape == (123,)

    def test_arrays_attached_to_runtime(self, poly):
        x = poly.eval("grcuda", "float[10]")
        x[0] = 1.0  # goes through the scheduler hook without error
        assert x[0] == 1.0

    @pytest.mark.parametrize(
        "bad",
        ["banana[10]", "float[]", "float[-3]", "float[0]", "float", "42"],
    )
    def test_bad_expressions_rejected(self, poly, bad):
        with pytest.raises(PolyglotError):
            poly.eval("grcuda", bad)

    def test_unknown_language_rejected(self, poly):
        with pytest.raises(PolyglotError):
            poly.eval("js", "float[1]")


class TestBuiltins:
    def test_device_array_builtin(self, poly):
        factory = poly.eval("grcuda", "DeviceArray")
        x = factory("float", 5, 6)
        assert x.shape == (5, 6)

    def test_sync_builtin(self, poly):
        sync = poly.eval("grcuda", "cudaDeviceSynchronize")
        sync()  # no-op on an idle device


class TestFigure4Listing:
    """The paper's Fig. 4 VEC host program, as written."""

    def test_full_listing(self, poly):
        from repro.kernels import LinearCostModel

        N = 1000
        NUM_BLOCKS, NUM_THREADS = 32, 128
        # Costed so the kernels outlive the host's submission loop (the
        # FIFO policy would otherwise rightly reuse one stream).
        cost = LinearCostModel(flops_per_item=1e6)

        def K1_CODE(x, n):
            np.square(x[:n], out=x[:n])

        def K2_CODE(x, y, z, n):
            z[0] = float(np.sum(x[:n] - y[:n]))

        buildkernel = poly.eval("grcuda", "buildkernel")
        K1 = buildkernel(K1_CODE, "square", "ptr, sint32", cost)
        K2 = buildkernel(
            K2_CODE, "sum", "const ptr, const ptr, ptr, sint32", cost
        )
        X = poly.eval("grcuda", "float[{}]".format(N))
        Y = poly.eval("grcuda", "float[{}]".format(N))
        Z = poly.eval("grcuda", "float[1]")
        X.fill(2.0)
        Y.fill(3.0)
        K1(NUM_BLOCKS, NUM_THREADS)(X, N)
        K1(NUM_BLOCKS, NUM_THREADS)(Y, N)
        K2(NUM_BLOCKS, NUM_THREADS)(X, Y, Z, N)
        res = Z[0]
        assert res == pytest.approx(N * (4.0 - 9.0))
        # The scheduler ran the two squares on different streams.
        squares = [
            r
            for r in poly.runtime.timeline.kernels()
            if r.label == "square"
        ]
        assert len({s.stream_id for s in squares}) == 2
