"""Cluster serving: placement policies, node faults, determinism.

The invariants pinned here are the PR's acceptance bar:

* every completed request is bit-identical to serial execution, with
  cross-node staging/readback priced and counted;
* BIN_PACK and SPREAD produce different, individually replay
  -deterministic placements;
* node-scoped fault plans shed/re-place onto survivors and every
  submission still reaches a terminal status.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Cluster,
    ClusterConfig,
    ClusterPlacementPolicy,
    ClusterScheduler,
    parse_cluster_spec,
)
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.serve import (
    GpuFleet,
    RequestStatus,
    ServeConfig,
    execute_serial,
    reset_request_ids,
)
from repro.serve.workloads import mixed_workload_graphs


def run_cluster(
    topologies="2,1|2",
    policy="spread",
    faults=None,
    count=8,
    tenants=3,
    seed=11,
    interconnect="ethernet-100g",
    deadline_us=None,
):
    """One small deterministic cluster run; returns (report, submitted)."""
    reset_request_ids()
    cluster = Cluster(
        topologies,
        config=ClusterConfig(
            policy=policy, interconnect=interconnect, faults=faults
        ),
    )
    submitted = []
    for i, graph in enumerate(mixed_workload_graphs(count, seed=seed)):
        arrival = i * 3e-4
        submitted.append(
            (
                cluster.submit(
                    f"t{i % tenants}",
                    graph,
                    arrival_time=arrival,
                    deadline=(
                        arrival + deadline_us * 1e-6
                        if deadline_us is not None
                        else None
                    ),
                ),
                graph,
            )
        )
    return cluster.run(), submitted


def assert_all_terminal(report, submitted):
    by_id = {r.request_id: r for r in report.results}
    assert sorted(by_id) == sorted(rid for rid, _ in submitted)
    return by_id


# -- specs and config ------------------------------------------------------


class TestClusterSpec:
    def test_parse_cluster_spec(self):
        assert parse_cluster_spec("2,2,1,1|4|2,2") == [
            [2, 2, 1, 1],
            [4],
            [2, 2],
        ]
        assert parse_cluster_spec("2") == [[2]]

    @pytest.mark.parametrize("bad", ["", "|", "2,x|1", "2,0|1"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_cluster_spec(bad)

    def test_slot_scoped_plan_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(faults="crash:slot=0,at=1e-3")

    def test_serve_template_faults_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(
                serve=ServeConfig(faults="crash:slot=0,at=1e-3")
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(policy="tetris")

    def test_fault_node_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            Cluster(
                "2|1",
                config=ClusterConfig(faults="crash:node=2,at=1e-3"),
            )

    def test_node_scoped_plan_rejected_on_plain_fleet(self):
        fleet = GpuFleet([1, 1])
        with pytest.raises(ValueError):
            fleet.attach_faults(FaultPlan.parse("crash:node=0,at=1e-3"))


# -- fault-free serving ----------------------------------------------------


class TestClusterServing:
    def test_completed_results_match_serial(self):
        report, submitted = run_cluster(count=6)
        by_id = assert_all_terminal(report, submitted)
        for request_id, graph in submitted:
            result = by_id[request_id]
            assert result.status is RequestStatus.COMPLETED
            assert result.node_index in (0, 1)
            for name, expected in execute_serial(graph).items():
                assert np.array_equal(result.outputs[name], expected)

    def test_network_cost_is_counted_and_priced(self):
        report, submitted = run_cluster(count=6)
        # One staging + one readback transfer per completed request.
        assert report.counters["cluster.net_ops"] == 2 * len(submitted)
        assert report.counters["cluster.net_bytes"] > 0
        assert report.counters["cluster.net_stage_bytes"] > 0
        assert report.counters["cluster.net_readback_bytes"] > 0

    def test_interconnect_speed_moves_the_timeline(self):
        slow, _ = run_cluster(interconnect="ethernet-10g")
        fast, _ = run_cluster(interconnect="loopback")
        assert slow.metrics.makespan > fast.metrics.makespan

    def test_per_node_reports_roll_up(self):
        report, submitted = run_cluster(count=8)
        served = sum(
            len(r.results) for r in report.per_node.values()
        )
        assert served == len(submitted)
        assert len(report.nodes) == 2

    def test_cluster_level_deadline_times_out(self):
        report, submitted = run_cluster(count=6, deadline_us=1.0)
        by_id = assert_all_terminal(report, submitted)
        assert any(
            by_id[rid].status is RequestStatus.TIMEOUT
            for rid, _ in submitted
        )


# -- placement policies ----------------------------------------------------


class TestPlacementPolicies:
    def test_bin_pack_and_spread_place_differently(self):
        pack, _ = run_cluster(policy="bin-pack", count=10)
        spread, _ = run_cluster(policy="spread", count=10)
        assert [r.node_index for r in pack.results] != [
            r.node_index for r in spread.results
        ]
        assert pack.fingerprint() != spread.fingerprint()

    @pytest.mark.parametrize(
        "policy", ["bin-pack", "spread", "affinity"]
    )
    def test_each_policy_is_replay_deterministic(self, policy):
        a, _ = run_cluster(policy=policy, count=8)
        b, _ = run_cluster(policy=policy, count=8)
        assert a.fingerprint() == b.fingerprint()

    def test_bin_pack_fills_first_node_first(self):
        report, _ = run_cluster(policy="bin-pack", count=8)
        # 8 requests fit node0's per-round budget (8 req/GPU x 3 GPUs).
        assert {r.node_index for r in report.results} == {0}

    def test_affinity_keeps_tenants_sticky(self):
        report, _ = run_cluster(policy="affinity", count=10, tenants=2)
        nodes_by_tenant = {}
        for r in report.results:
            nodes_by_tenant.setdefault(r.tenant, set()).add(
                r.node_index
            )
        for nodes in nodes_by_tenant.values():
            assert len(nodes) == 1

    def test_scheduler_tie_breaks_by_node_id(self):
        scheduler = ClusterScheduler(ClusterPlacementPolicy.SPREAD)

        class FakeNode:
            def __init__(self, index):
                self.index = index
                self.total_gpus = 2
                self.clock = 0.0

        class FakeRequest:
            class graph:
                total_bytes = 64

            tenant = "t0"

        nodes = [FakeNode(0), FakeNode(1)]
        assert scheduler.place(FakeRequest, nodes).index == 0


# -- node faults -----------------------------------------------------------


class TestNodeFaults:
    def test_node_crash_replaces_onto_survivor(self):
        report, submitted = run_cluster(
            faults="crash:node=1,at=1e-3", count=8
        )
        by_id = assert_all_terminal(report, submitted)
        assert report.counters["cluster.node_faults_injected"] >= 1
        # Everything that terminated COMPLETED must match serial, and
        # the crashed node must not have completed anything after help
        # from the survivor was needed.
        for request_id, graph in submitted:
            result = by_id[request_id]
            if result.status is not RequestStatus.COMPLETED:
                continue
            for name, expected in execute_serial(graph).items():
                assert np.array_equal(result.outputs[name], expected)

    def test_node_drain_stops_placements_without_failures(self):
        report, submitted = run_cluster(
            faults="drain:node=0,at=0.0", count=6
        )
        by_id = assert_all_terminal(report, submitted)
        for rid, _ in submitted:
            result = by_id[rid]
            assert result.status is RequestStatus.COMPLETED
            assert result.node_index == 1

    def test_node_transfer_fault_burns_link_time_once(self):
        plan = "transfer-fault:node=0,at=0.0"
        faulted, _ = run_cluster(faults=plan, count=6)
        clean, _ = run_cluster(count=6)
        assert faulted.counters["cluster.net_retries"] == 1
        assert clean.counters["cluster.net_retries"] == 0
        # The retried staging attempt is an extra transfer op.
        assert (
            faulted.counters["cluster.net_ops"]
            == clean.counters["cluster.net_ops"] + 1
        )

    def test_total_cluster_blackout_sheds_instead_of_hanging(self):
        report, submitted = run_cluster(
            faults="crash:node=0,at=1e-9;crash:node=1,at=1e-9",
            count=6,
        )
        by_id = assert_all_terminal(report, submitted)
        for rid, _ in submitted:
            assert by_id[rid].status in (
                RequestStatus.SHED,
                RequestStatus.FAILED,
            )

    def test_node_restart_recovers(self):
        report, submitted = run_cluster(
            faults=(
                "crash:node=0,at=1e-9;crash:node=1,at=1e-9;"
                "restart:node=0,at=1e-3,warmup=1e-4"
            ),
            count=6,
        )
        by_id = assert_all_terminal(report, submitted)
        completed = [
            by_id[rid]
            for rid, _ in submitted
            if by_id[rid].status is RequestStatus.COMPLETED
        ]
        assert completed
        assert all(r.node_index == 0 for r in completed)

    def test_same_plan_bit_identical(self):
        plan = "crash:node=1,at=1e-3;restart:node=1,at=3e-3,warmup=2e-4"
        a, _ = run_cluster(faults=plan)
        b, _ = run_cluster(faults=plan)
        assert a.fingerprint() == b.fingerprint()

    def test_different_plans_fingerprint_differently(self):
        a, _ = run_cluster(faults="crash:node=0,at=1e-3")
        b, _ = run_cluster(faults="crash:node=1,at=1e-3")
        assert a.fingerprint() != b.fingerprint()


# -- the property test -----------------------------------------------------


class TestClusterChaosProperty:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_node_plans_replay_bit_identical(self, seed):
        """Property (the tentpole's acceptance check): ANY seeded
        node-scoped fault plan over a 2-node cluster yields
        fingerprint-equal reports across two runs, every request
        reaches a terminal status, and completed results match
        serial."""
        plan = FaultPlan.random_nodes(seed, nodes=2, horizon=2e-3)
        first, submitted = run_cluster(
            faults=plan, count=6, seed=seed % 17
        )
        second, _ = run_cluster(faults=plan, count=6, seed=seed % 17)
        assert first.fingerprint() == second.fingerprint()
        by_id = assert_all_terminal(first, submitted)
        assert first.metrics.terminal == len(submitted)
        for request_id, graph in submitted:
            result = by_id[request_id]
            if not result.ok:
                continue
            for name, expected in execute_serial(graph).items():
                assert np.array_equal(result.outputs[name], expected)
