"""Host-to-host network model: pricing, serialization, counters."""

import pytest

from repro.cluster.network import (
    INTERCONNECTS,
    ClusterNetwork,
    LinkSpec,
    resolve_interconnect,
)
from repro.errors import ConfigError


class TestLinkSpec:
    def test_presets_resolve_by_name(self):
        for name, spec in INTERCONNECTS.items():
            assert resolve_interconnect(name) is spec
            assert resolve_interconnect(spec) is spec

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            resolve_interconnect("carrier-pigeon")

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            LinkSpec("bad", 0.0, 1e-6)
        with pytest.raises(ConfigError):
            LinkSpec("bad", 1.0, -1e-6)

    def test_serialize_time(self):
        link = LinkSpec("test", 10.0, 0.0)  # 10 GB/s
        assert link.serialize_time(10_000_000_000) == pytest.approx(1.0)
        assert INTERCONNECTS["loopback"].serialize_time(1 << 30) == 0.0


class TestClusterNetwork:
    def test_transfer_pays_latency_plus_wire_time(self):
        net = ClusterNetwork(LinkSpec("test", 1.0, 1e-3))  # 1 GB/s
        done = net.transfer(0, 1_000_000, now=0.0)
        assert done == pytest.approx(1e-3 + 1e-3)

    def test_same_link_direction_serializes(self):
        net = ClusterNetwork(LinkSpec("test", 1.0, 0.0))
        first = net.transfer(0, 1_000_000, now=0.0)
        second = net.transfer(0, 1_000_000, now=0.0)
        assert second == pytest.approx(first + 1e-3)

    def test_different_nodes_and_directions_overlap(self):
        net = ClusterNetwork(LinkSpec("test", 1.0, 0.0))
        a = net.transfer(0, 1_000_000, now=0.0, direction="in")
        b = net.transfer(1, 1_000_000, now=0.0, direction="in")
        c = net.transfer(0, 1_000_000, now=0.0, direction="out")
        assert a == pytest.approx(b)
        assert a == pytest.approx(c)

    def test_latency_pipelines_behind_wire_time(self):
        # The link half is occupied for the wire time only: back-to-back
        # transfers pipeline behind the latency, they don't re-pay it
        # serially.
        net = ClusterNetwork(LinkSpec("test", 1.0, 5e-3))
        first = net.transfer(0, 1_000_000, now=0.0)
        second = net.transfer(0, 1_000_000, now=0.0)
        assert first == pytest.approx(5e-3 + 1e-3)
        assert second == pytest.approx(5e-3 + 2e-3)

    def test_zero_bytes_still_pays_latency(self):
        net = ClusterNetwork(LinkSpec("test", 1.0, 1e-3))
        assert net.transfer(0, 0, now=0.0) == pytest.approx(1e-3)

    def test_negative_bytes_rejected(self):
        net = ClusterNetwork("loopback")
        with pytest.raises(ValueError):
            net.transfer(0, -1, now=0.0)

    def test_counters_split_by_direction(self):
        net = ClusterNetwork("ethernet-100g")
        net.transfer(0, 100, now=0.0, direction="in")
        net.transfer(0, 40, now=0.0, direction="out")
        snap = net.counters.snapshot()
        assert snap["cluster.net_bytes"] == 140
        assert snap["cluster.net_ops"] == 2
        assert snap["cluster.net_stage_bytes"] == 100
        assert snap["cluster.net_readback_bytes"] == 40

    def test_transfers_never_start_before_now(self):
        net = ClusterNetwork(LinkSpec("test", 1.0, 0.0))
        net.transfer(0, 1_000_000, now=0.0)
        late = net.transfer(0, 1_000_000, now=10.0)
        assert late == pytest.approx(10.0 + 1e-3)
