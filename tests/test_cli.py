"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_defaults(self):
        args = build_parser().parse_args(["figure7"])
        assert args.scales == 2
        assert args.iterations == 3

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.tenants == 4
        assert args.requests == 100
        assert args.fleet_size == 2
        assert args.fleet is None
        assert args.admission == "fair-share"
        assert args.placement == "least-loaded"
        assert args.traffic == "uniform"
        assert args.movement_window == 0
        assert args.serve_out is None

    def test_serve_bench_fleet_topology_flags(self):
        args = build_parser().parse_args(
            [
                "serve-bench",
                "--fleet", "2,2,1,1",
                "--traffic", "skewed",
                "--movement-window", "4",
                "--serve-out", "BENCH_serving.json",
            ]
        )
        assert args.fleet == "2,2,1,1"
        assert args.traffic == "skewed"
        assert args.movement_window == 4
        assert args.serve_out == "BENCH_serving.json"

    def test_serve_bench_flags(self):
        args = build_parser().parse_args(
            [
                "serve-bench",
                "--tenants", "6",
                "--requests", "30",
                "--fleet-size", "3",
                "--admission", "priority",
                "--placement", "round-robin",
            ]
        )
        assert (args.tenants, args.requests, args.fleet_size) == (6, 30, 3)
        assert args.admission == "priority"
        assert args.placement == "round-robin"

    def test_movement_bench_defaults(self):
        args = build_parser().parse_args(["movement-bench"])
        assert args.fleet_gpus == 2
        assert args.window == 4
        assert not args.no_serving_axes

    def test_movement_bench_fleet_flag(self):
        args = build_parser().parse_args(
            ["movement-bench", "--fleet-gpus", "0"]
        )
        assert args.fleet_gpus == 0

    def test_sim_bench_defaults(self):
        args = build_parser().parse_args(["sim-bench"])
        assert args.bench_out == "BENCH_simulator.json"

    def test_sim_bench_custom_output(self):
        args = build_parser().parse_args(
            ["sim-bench", "--bench-out", "/tmp/b.json"]
        )
        assert args.bench_out == "/tmp/b.json"

    def test_trace_flags_default_off(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.trace is False
        assert args.trace_out is None
        assert args.target is None

    def test_trace_flags(self):
        args = build_parser().parse_args(
            ["serve-bench", "--trace-out", "trace.json"]
        )
        assert args.trace_out == "trace.json"
        args = build_parser().parse_args(["sim-bench", "--trace"])
        assert args.trace is True

    def test_trace_meta_experiment_takes_a_target(self):
        args = build_parser().parse_args(["trace", "serve-bench"])
        assert args.experiment == "trace"
        assert args.target == "serve-bench"

    def test_target_rejected_outside_trace(self):
        with pytest.raises(SystemExit):
            main(["figure7", "serve-bench"])

    def test_trace_rejects_untraceable_target(self):
        with pytest.raises(SystemExit):
            main(["trace", "figure7"])

    def test_serve_bench_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-bench", "--admission", "lottery"]
            )

    def test_serve_bench_rejects_unknown_traffic_mix(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve-bench", "--traffic", "tsunami"]
            )


class TestExecution:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "GPU memory" in out

    def test_figure10_runs(self, capsys):
        assert main(["figure10", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "CT" in out

    @pytest.mark.parametrize(
        "admission", ["fifo", "priority", "fair-share"]
    )
    def test_serve_bench_runs_each_admission_policy(
        self, capsys, admission
    ):
        assert (
            main(
                [
                    "serve-bench",
                    "--tenants", "4",
                    "--requests", "12",
                    "--fleet-size", "2",
                    "--admission", admission,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"admission={admission}" in out
        assert "throughput" in out
        assert "tenant3" in out  # every tenant reported

    def test_serve_bench_heterogeneous_fleet_writes_json(
        self, capsys, tmp_path
    ):
        import json

        out_path = tmp_path / "BENCH_serving.json"
        assert (
            main(
                [
                    "serve-bench",
                    "--requests", "8",
                    "--tenants", "2",
                    "--fleet", "2,1",
                    "--serve-out", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet=[2,1]x" in out
        data = json.loads(out_path.read_text())
        assert data["fleet"] == [2, 1]
        assert data["total_gpus"] == 3
        assert data["requests"] == 8
        assert data["latency_ms"]["p99"] > 0
        # satellite: the summary carries the registry's capture-cache
        # and window-flush counts
        assert data["capture_misses"] > 0
        assert "window_flushes" in data
        assert data["counters"]["serve.admitted"] == 8

    def test_serve_bench_trace_out_writes_valid_chrome_trace(
        self, capsys, tmp_path
    ):
        from repro.obs.export import validate_chrome_trace_file

        trace_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "serve-bench",
                    "--requests", "6",
                    "--tenants", "2",
                    "--fleet", "2,1",
                    "--trace-out", str(trace_path),
                ]
            )
            == 0
        )
        assert f"wrote {trace_path}" in capsys.readouterr().out
        assert validate_chrome_trace_file(str(trace_path)) == []

    def test_trace_meta_experiment_defaults_to_serve_bench(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.obs.export import validate_chrome_trace_file

        monkeypatch.chdir(tmp_path)
        assert (
            main(["trace", "--requests", "6", "--tenants", "2"]) == 0
        )
        assert (tmp_path / "TRACE_serving.json").exists()
        assert (
            validate_chrome_trace_file(
                str(tmp_path / "TRACE_serving.json")
            )
            == []
        )
