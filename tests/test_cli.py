"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_defaults(self):
        args = build_parser().parse_args(["figure7"])
        assert args.scales == 2
        assert args.iterations == 3


class TestExecution:
    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "GPU memory" in out

    def test_figure10_runs(self, capsys):
        assert main(["figure10", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "CT" in out
