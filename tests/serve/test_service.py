"""Integration tests for the multi-tenant scheduler service."""

import numpy as np
import pytest

from repro.multigpu import DevicePlacementPolicy
from repro.serve import (
    AdmissionPolicy,
    GpuFleet,
    SchedulerService,
    ServeConfig,
    execute_serial,
)
from repro.serve.capture import derive_plan
from repro.serve.workloads import (
    SERVING_SCALES,
    graph_from_benchmark,
    mixed_workload_graphs,
)
from repro.workloads.suite import create_benchmark


def make_service(admission=AdmissionPolicy.FIFO, fleet_size=2, **kw):
    return SchedulerService(
        fleet_size=fleet_size,
        config=ServeConfig(admission=admission, **kw),
    )


def submit_mixed(service, tenants, count, seed=5, spacing=1e-4):
    """Submit ``count`` mixed graphs round-robin over ``tenants``;
    returns (request_id, graph) pairs."""
    graphs = mixed_workload_graphs(count, seed=seed)
    out = []
    for i, graph in enumerate(graphs):
        out.append(
            (
                service.submit(
                    tenants[i % len(tenants)],
                    graph,
                    arrival_time=i * spacing,
                ),
                graph,
            )
        )
    return out


class TestResultsMatchSerial:
    @pytest.mark.parametrize("admission", list(AdmissionPolicy))
    def test_three_tenants_on_two_gpus_match_serial(self, admission):
        """Acceptance: >= 3 concurrent tenants' graphs on a >= 2-GPU
        fleet produce per-tenant results identical to serial
        single-runtime execution — under every admission policy."""
        service = make_service(admission=admission)
        tenants = ["alice", "bob", "carol"]
        for i, t in enumerate(tenants):
            service.register_tenant(t, priority=i)
        submitted = submit_mixed(service, tenants, 12)
        report = service.run()
        assert report.metrics.completed == 12
        assert report.metrics.tenants == 3
        by_id = {r.request_id: r for r in report.results}
        for request_id, graph in submitted:
            reference = execute_serial(graph)
            result = by_id[request_id]
            assert set(result.outputs) == set(reference)
            for name, expected in reference.items():
                assert np.array_equal(result.outputs[name], expected)

    def test_replayed_and_inferred_requests_agree(self):
        """The capture fast path must be numerically indistinguishable
        from the inference path."""
        service = make_service(batch_window=0.0)  # no batching: pure paths
        bench_a = create_benchmark("vec", 50_000, seed=1, iterations=1)
        bench_b = create_benchmark("vec", 50_000, seed=2, iterations=1)
        ga = graph_from_benchmark(bench_a)
        gb = graph_from_benchmark(bench_b)
        service.submit("t0", ga, arrival_time=0.0)
        service.submit("t0", gb, arrival_time=1e-3)
        report = service.run()
        first, second = sorted(
            report.results, key=lambda r: r.request_id
        )
        assert not first.replayed      # cold topology: inference path
        assert second.replayed         # warm: capture replay
        for graph, result in ((ga, first), (gb, second)):
            reference = execute_serial(graph)
            for name, expected in reference.items():
                assert np.array_equal(result.outputs[name], expected)


class TestTenantIsolation:
    def test_separate_history_and_timeline_per_tenant(self):
        service = make_service()
        submitted = submit_mixed(service, ["a", "b"], 6)
        report = service.run()
        for name in ("a", "b"):
            tenant = report.tenants[name]
            assert tenant.completed == 3
            # Its private history only holds its own executions.
            assert tenant.history.kernels()
            # Its private timeline only carries its own tagged records.
            assert len(tenant.timeline) > 0
            for record in tenant.timeline:
                assert record.meta["tenant"] == name
        # Kernel executions across tenants account for every launch.
        total = sum(
            t.history.execution_count(k)
            for t in report.tenants.values()
            for k in t.history.kernels()
        )
        assert total == sum(
            len(g.launches) for _, g in submitted
        )

    def test_tenant_timeline_includes_transfers(self):
        """CPU-access readbacks and input migrations carry the tenant
        tag too — per-tenant timelines see the whole request, not just
        its kernels."""
        service = make_service(fleet_size=1)
        submit_mixed(service, ["a"], 2)
        report = service.run()
        kinds = {r.kind.value for r in report.tenants["a"].timeline}
        assert "kernel" in kinds
        assert kinds & {"htod", "dtoh"}

    def test_latencies_recorded_per_tenant(self):
        service = make_service()
        submit_mixed(service, ["a", "b", "c"], 9)
        report = service.run()
        for t in ("a", "b", "c"):
            assert len(report.tenants[t].latencies) == 3
            assert all(v > 0 for v in report.tenants[t].latencies)


class TestBatching:
    def test_same_topology_within_window_coalesces(self):
        service = make_service(batch_window=1.0, batch_max=8)
        graphs = mixed_workload_graphs(6, seed=3, workloads=["vec"])
        for i, g in enumerate(graphs):
            service.submit("t", g, arrival_time=i * 1e-5)
        report = service.run()
        assert report.metrics.batches == 1
        assert report.metrics.batched_requests == 6
        assert all(r.batch_size == 6 for r in report.results)

    def test_window_zero_disables_batching(self):
        service = make_service(batch_window=0.0)
        graphs = mixed_workload_graphs(4, seed=3, workloads=["vec"])
        for i, g in enumerate(graphs):
            service.submit("t", g, arrival_time=0.0)
        report = service.run()
        assert report.metrics.batches == 4
        assert report.metrics.batched_requests == 0

    def test_distinct_topologies_never_share_a_batch(self):
        service = make_service(batch_window=10.0)
        graphs = mixed_workload_graphs(6, seed=3)  # vec/b&s/ml cycle
        for g in graphs:
            service.submit("t", g, arrival_time=0.0)
        report = service.run()
        assert report.metrics.batches == 3
        for r in report.results:
            assert r.batch_size == 2


class TestCaptureCache:
    def test_one_plan_per_topology(self):
        service = make_service()
        submit_mixed(service, ["a"], 9)  # 3 workloads x 3 graphs
        report = service.run()
        assert len(service.cache) == 3
        m = report.metrics
        assert m.capture_hits + m.capture_misses == 9

    def test_disabled_cache_never_replays(self):
        service = make_service(capture_cache=False)
        submit_mixed(service, ["a"], 6)
        report = service.run()
        assert all(not r.replayed for r in report.results)
        # A disabled cache reports no traffic at all — including for
        # batch members riding a head request's (non-)lookup.
        assert report.metrics.capture_hits == 0
        assert report.metrics.capture_misses == 0

    def test_derived_plan_matches_graph_shape(self):
        graph = mixed_workload_graphs(1, workloads=["vec"])[0]
        plan = derive_plan(graph)
        assert len(plan.steps) == len(graph.launches)
        assert plan.stream_count >= 2  # vec's two squares overlap
        assert len(plan.captured.nodes) == len(graph.launches)


class TestFleetPlacement:
    @pytest.mark.parametrize("policy", list(DevicePlacementPolicy))
    def test_every_policy_spreads_load(self, policy):
        service = SchedulerService(
            fleet=GpuFleet.build(2, policy=policy),
        )
        submit_mixed(service, ["a", "b"], 8)
        report = service.run()
        assert report.metrics.completed == 8
        assert all(b > 0 for b in report.metrics.device_busy)

    def test_min_transfer_prefers_warm_topology(self):
        fleet = GpuFleet.build(
            2, policy=DevicePlacementPolicy.MIN_TRANSFER
        )
        service = SchedulerService(
            fleet=fleet,
            config=ServeConfig(batch_window=0.0),
        )
        graphs = mixed_workload_graphs(4, seed=9, workloads=["vec"])
        for i, g in enumerate(graphs):
            service.submit("t", g, arrival_time=i * 1e-2)
        report = service.run()
        # Spaced-out identical topologies pile onto the warm device.
        devices = {r.device_index for r in report.results}
        assert len(devices) == 1

    def test_least_loaded_balances(self):
        fleet = GpuFleet.build(
            2, policy=DevicePlacementPolicy.LEAST_LOADED
        )
        service = SchedulerService(
            fleet=fleet, config=ServeConfig(batch_window=0.0)
        )
        graphs = mixed_workload_graphs(6, seed=9, workloads=["vec"])
        for g in graphs:
            service.submit("t", g, arrival_time=0.0)
        report = service.run()
        counts = [0, 0]
        for r in report.results:
            counts[r.device_index] += 1
        assert counts[0] == counts[1] == 3


class TestServiceMechanics:
    def test_latency_includes_queue_wait(self):
        service = make_service(fleet_size=1, batch_window=0.0)
        graphs = mixed_workload_graphs(3, workloads=["vec"])
        for g in graphs:
            service.submit("t", g, arrival_time=0.0)
        report = service.run()
        ordered = sorted(report.results, key=lambda r: r.finish_time)
        # One device, simultaneous arrivals: later requests wait longer.
        assert ordered[0].queue_wait < ordered[-1].queue_wait
        for r in report.results:
            assert r.latency >= r.queue_wait >= 0

    def test_device_idles_until_arrival(self):
        service = make_service(fleet_size=1)
        graph = mixed_workload_graphs(1, workloads=["vec"])[0]
        service.submit("t", graph, arrival_time=0.5)
        report = service.run()
        result = report.results[0]
        assert result.start_time >= 0.5
        assert result.latency < 0.5  # waiting is not execution time

    def test_serial_scheduler_config_serves_correctly(self):
        """The fleet can run original-GrCUDA serial contexts too."""
        from repro.core.policies import ExecutionPolicy, SchedulerConfig

        service = make_service(
            scheduler=SchedulerConfig(execution=ExecutionPolicy.SERIAL),
        )
        submitted = submit_mixed(service, ["a", "b"], 4)
        report = service.run()
        assert report.metrics.completed == 4
        by_id = {r.request_id: r for r in report.results}
        for request_id, graph in submitted:
            reference = execute_serial(graph)
            for name, expected in reference.items():
                assert np.array_equal(
                    by_id[request_id].outputs[name], expected
                )

    def test_report_without_results_raises(self):
        service = make_service()
        with pytest.raises(ValueError):
            service.report()

    def test_render_mentions_key_indicators(self):
        service = make_service()
        submit_mixed(service, ["a", "b"], 4)
        text = service.run().render()
        for needle in ("p50", "p99", "throughput", "utilization", "a"):
            assert needle in text

    def test_engine_stream_count_stays_bounded(self):
        """Re-entrant context reuse must reclaim per-request streams:
        a long-lived serving device's engine does not accumulate one
        stream set per request."""
        service = make_service(fleet_size=1)
        submit_mixed(service, ["a"], 9)
        report = service.run()
        device = report.fleet.devices[0]
        # default + replay pool (bounded by batch_max * plan streams),
        # not O(requests * streams-per-request).
        assert len(device.engine.streams) < 20


class TestServingScales:
    def test_scales_cover_the_mixed_suite(self):
        assert set(SERVING_SCALES) == {"vec", "b&s", "ml"}
        for name, scale in SERVING_SCALES.items():
            bench = create_benchmark(name, scale, execute=False)
            assert bench.memory_footprint_bytes() < 64 * 1024 * 1024
