"""Admission-control policies: unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.admission import (
    AdmissionPolicy,
    FairShareQueue,
    FifoQueue,
    PriorityQueue,
    make_queue,
)
from repro.serve.request import (
    ArrayDecl,
    GraphRequest,
    KernelDecl,
    LaunchDecl,
    TaskGraph,
)
from repro.kernels.profile import LinearCostModel


def _noop(x, n):
    pass


def tiny_graph(tag: str = "g") -> TaskGraph:
    return TaskGraph(
        name=tag,
        arrays={"x": ArrayDecl("x", (8,), np.float32)},
        kernels=(
            KernelDecl("k", "ptr, sint32", _noop, LinearCostModel()),
        ),
        launches=(LaunchDecl("k", 1, 8, ("x", 8)),),
    )


def request(tenant: str, priority: int = 0, arrival: float = 0.0):
    return GraphRequest(
        tenant=tenant,
        graph=tiny_graph(),
        priority=priority,
        arrival_time=arrival,
    )


class TestFactory:
    def test_make_queue_covers_every_policy(self):
        assert isinstance(make_queue(AdmissionPolicy.FIFO), FifoQueue)
        assert isinstance(
            make_queue(AdmissionPolicy.PRIORITY), PriorityQueue
        )
        assert isinstance(
            make_queue(AdmissionPolicy.FAIR_SHARE), FairShareQueue
        )


class TestFifo:
    def test_strict_arrival_order(self):
        q = FifoQueue()
        reqs = [request("a"), request("b"), request("a")]
        for r in reqs:
            q.push(r)
        assert [q.pop() for _ in range(3)] == reqs
        assert q.pop() is None

    def test_take_matching_preserves_rest(self):
        q = FifoQueue()
        reqs = [request("a"), request("b"), request("a")]
        for r in reqs:
            q.push(r)
        taken = q.take_matching(lambda r: r.tenant == "a", limit=5)
        assert taken == [reqs[0], reqs[2]]
        assert len(q) == 1
        assert q.pop() is reqs[1]

    def test_admitted_counts_charged(self):
        q = FifoQueue()
        for r in [request("a"), request("a"), request("b")]:
            q.push(r)
        q.pop()
        q.take_matching(lambda r: True, limit=2)
        assert q.admitted_counts == {"a": 2, "b": 1}


class TestPriority:
    def test_highest_priority_first(self):
        q = PriorityQueue()
        low = request("a", priority=0)
        hi = request("b", priority=5)
        mid = request("c", priority=2)
        for r in (low, hi, mid):
            q.push(r)
        assert [q.pop() for _ in range(3)] == [hi, mid, low]

    def test_fifo_within_level(self):
        q = PriorityQueue()
        first = request("a", priority=1)
        second = request("b", priority=1)
        q.push(first)
        q.push(second)
        assert q.pop() is first
        assert q.pop() is second

    def test_low_priority_can_starve_by_design(self):
        q = PriorityQueue()
        starved = request("low", priority=0)
        q.push(starved)
        for _ in range(5):
            q.push(request("vip", priority=9))
        for _ in range(5):
            assert q.pop().tenant == "vip"
        assert q.pop() is starved


class TestFairShare:
    def test_round_robins_equal_backlogs(self):
        q = FairShareQueue()
        for _ in range(3):
            q.push(request("a"))
            q.push(request("b"))
            q.push(request("c"))
        served = [q.pop().tenant for _ in range(9)]
        # Every window of three pops serves all three tenants.
        for i in range(0, 9, 3):
            assert set(served[i:i + 3]) == {"a", "b", "c"}

    def test_newcomer_catches_up_but_does_not_monopolize(self):
        q = FairShareQueue()
        for _ in range(4):
            q.push(request("old"))
        assert q.pop().tenant == "old"
        assert q.pop().tenant == "old"
        for _ in range(4):
            q.push(request("new"))
        # "new" has been admitted 0 times vs 2 for "old": it is served
        # first until the counts level, then service alternates.
        assert q.pop().tenant == "new"
        assert q.pop().tenant == "new"
        following = [q.pop().tenant for _ in range(4)]
        assert following.count("old") == 2
        assert following.count("new") == 2

    def test_pending_by_tenant(self):
        q = FairShareQueue()
        q.push(request("a"))
        q.push(request("a"))
        q.push(request("b"))
        assert q.pending_by_tenant() == {"a": 2, "b": 1}

    def test_take_matching_respects_global_arrival_order(self):
        # A bounded take must prefer globally-older requests even when
        # they live in different per-tenant queues.
        q = FairShareQueue()
        a0 = request("a")
        b1 = request("b")
        a2 = request("a")
        b3 = request("b")
        for r in (a0, b1, a2, b3):
            q.push(r)
        taken = q.take_matching(lambda r: True, limit=2)
        assert taken == [a0, b1]
        assert len(q) == 2


# -- the starvation-freedom property -------------------------------------

tenant_names = st.sampled_from(["a", "b", "c", "d", "e"])
ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), tenant_names),
        st.tuples(st.just("pop"), st.none()),
    ),
    min_size=1,
    max_size=80,
)


class TestFairShareNeverStarves:
    @given(ops)
    @settings(max_examples=200, deadline=None)
    def test_pop_always_serves_a_least_served_backlogged_tenant(self, ops):
        """The invariant that implies starvation-freedom: every admitted
        request belongs to a tenant whose admitted count is minimal
        among tenants that have work queued.  A backlogged tenant can
        therefore be overtaken at most once by each other tenant before
        it is served again."""
        q = FairShareQueue()
        for op, tenant in ops:
            if op == "push":
                q.push(request(tenant))
            else:
                backlogged = q.pending_by_tenant()
                counts_before = {
                    t: q.admitted_counts[t] for t in backlogged
                }
                popped = q.pop()
                if not backlogged:
                    assert popped is None
                    continue
                assert counts_before[popped.tenant] == min(
                    counts_before.values()
                )

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=3, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_sustained_backlog_shares_service_evenly(
        self, tenants, per_tenant
    ):
        """With every tenant continuously backlogged, admitted counts
        never diverge by more than one — no tenant starves."""
        q = FairShareQueue()
        names = [f"t{i}" for i in range(tenants)]
        for _ in range(per_tenant):
            for name in names:
                q.push(request(name))
        for popped_so_far in range(tenants * per_tenant):
            q.pop()
            counts = [q.admitted_counts[n] for n in names]
            assert max(counts) - min(counts) <= 1


class TestEnumValues:
    @pytest.mark.parametrize(
        "policy,value",
        [
            (AdmissionPolicy.FIFO, "fifo"),
            (AdmissionPolicy.PRIORITY, "priority"),
            (AdmissionPolicy.FAIR_SHARE, "fair-share"),
        ],
    )
    def test_cli_facing_values(self, policy, value):
        assert policy.value == value


class TestEvictLowest:
    """The graceful-degradation shed hook (service watermark shedding)."""

    def _loaded(self, queue_cls):
        q = queue_cls()
        # Two priorities, staggered arrivals; ids increase with pushes.
        q.push(request("a", priority=1, arrival=1.0))
        q.push(request("b", priority=0, arrival=2.0))
        q.push(request("a", priority=0, arrival=3.0))
        q.push(request("b", priority=1, arrival=4.0))
        return q

    @pytest.mark.parametrize(
        "queue_cls", [FifoQueue, PriorityQueue, FairShareQueue]
    )
    def test_sheds_lowest_priority_newest_first(self, queue_cls):
        q = self._loaded(queue_cls)
        victims = q.evict_lowest(2)
        # Both priority-0 requests go, the newer one first.
        assert [(v.priority, v.arrival_time) for v in victims] == [
            (0, 3.0), (0, 2.0)
        ]
        assert len(q) == 2

    @pytest.mark.parametrize(
        "queue_cls", [FifoQueue, PriorityQueue, FairShareQueue]
    )
    def test_survivors_keep_relative_order(self, queue_cls):
        q = self._loaded(queue_cls)
        before = []
        probe = self._loaded(queue_cls)
        while (r := probe.pop()) is not None:
            before.append((r.priority, r.arrival_time))
        q.evict_lowest(2)
        after = []
        while (r := q.pop()) is not None:
            after.append((r.priority, r.arrival_time))
        survivors = [x for x in before if x[0] != 0]
        assert after == survivors

    def test_eviction_not_charged_to_admission(self):
        q = FairShareQueue()
        q.push(request("a", arrival=1.0))
        q.push(request("a", arrival=2.0))
        q.pop()  # one genuine admission
        assert q.admitted_counts["a"] == 1
        victims = q.evict_lowest(5)
        assert len(victims) == 1
        assert q.admitted_counts["a"] == 1

    def test_zero_or_negative_count_is_noop(self):
        q = self._loaded(FifoQueue)
        assert q.evict_lowest(0) == []
        assert q.evict_lowest(-3) == []
        assert len(q) == 4

    def test_count_beyond_queue_drains_it(self):
        q = self._loaded(PriorityQueue)
        victims = q.evict_lowest(99)
        assert len(victims) == 4
        assert len(q) == 0
        assert q.pop() is None

    def test_request_id_breaks_arrival_ties(self):
        q = FifoQueue()
        first = request("a", priority=0, arrival=1.0)
        second = request("a", priority=0, arrival=1.0)
        q.push(first)
        q.push(second)
        victims = q.evict_lowest(1)
        # Same priority and arrival: the later submission sheds first.
        assert victims[0].request_id == second.request_id
