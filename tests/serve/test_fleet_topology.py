"""Fleet-of-Sessions tests: multi-GPU serving slots, topology specs,
slot-keyed captures, deterministic placement and the cross-acquire
coalescing window on the serving path."""

import numpy as np
import pytest

from repro.core.policies import SchedulerConfig
from repro.gpusim.specs import gpu_by_name
from repro.memory.coherence import MovementPolicy
from repro.multigpu import DevicePlacementPolicy
from repro.serve import (
    GpuFleet,
    SchedulerService,
    ServeConfig,
    execute_serial,
    parse_fleet_spec,
)
from repro.serve.fleet import normalize_slot_spec
from repro.serve.workloads import mixed_workload_graphs


def serve_mixed(
    requests,
    tenants=4,
    fleet_topology=(2, 1),
    seed=13,
    spacing=1e-4,
    **config_kw,
):
    service = SchedulerService(
        fleet_topology=list(fleet_topology),
        config=ServeConfig(**config_kw),
    )
    graphs = mixed_workload_graphs(requests, seed=seed)
    submitted = []
    for i, graph in enumerate(graphs):
        submitted.append(
            (
                service.submit(
                    f"tenant{i % tenants}",
                    graph,
                    arrival_time=i * spacing,
                ),
                graph,
            )
        )
    report = service.run()
    return report, submitted


class TestTopologySpec:
    def test_parse_fleet_spec(self):
        assert parse_fleet_spec("2,2,1,1") == [2, 2, 1, 1]
        assert parse_fleet_spec("3") == [3]

    @pytest.mark.parametrize("bad", ["", "0", "2,-1", "a,b", "2,,x"])
    def test_parse_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_fleet_spec(bad)

    def test_normalize_slot_spec_forms(self):
        spec = gpu_by_name("GTX 1660 Super")
        assert normalize_slot_spec(2, spec) == [spec, spec]
        assert normalize_slot_spec("GTX 1660 Super", spec) == [spec]
        assert normalize_slot_spec((2, "GTX 1660 Super"), spec) == [
            spec, spec,
        ]
        p100 = gpu_by_name("Tesla P100")
        assert normalize_slot_spec([spec, p100], spec) == [spec, p100]

    def test_normalize_rejects_empty_and_nonpositive(self):
        spec = gpu_by_name("GTX 1660 Super")
        with pytest.raises(ValueError):
            normalize_slot_spec(0, spec)
        with pytest.raises(ValueError):
            normalize_slot_spec([], spec)

    def test_normalize_rejects_non_spec_sequence_entries(self):
        """A nested topology list ([[2, 2]]) must fail loudly at
        validation, not deep inside Session construction."""
        spec = gpu_by_name("GTX 1660 Super")
        with pytest.raises(ValueError, match="GPU names or"):
            normalize_slot_spec([2, 2], spec)
        with pytest.raises(ValueError):
            GpuFleet([[2, 2]])

    def test_describe_reports_mixed_models(self):
        fleet = GpuFleet([2, (1, "Tesla P100")])
        text = fleet.describe()
        assert "mixed(" in text
        assert "Tesla P100" in text and "GTX 1660 Super" in text
        assert fleet.gpu_models() == ["GTX 1660 Super", "Tesla P100"]

    def test_fleet_topology_and_describe(self):
        fleet = GpuFleet([2, 2, 1, 1])
        assert fleet.topology == [2, 2, 1, 1]
        assert fleet.total_gpus == 6
        assert len(fleet) == 4
        assert fleet.describe().startswith("[2,2,1,1]x")
        # Each slot is a real multi- or single-GPU Session.
        assert fleet.slots[0].session.gpus == 2
        assert fleet.slots[2].session.gpus == 1

    def test_build_with_gpus_per_slot(self):
        fleet = GpuFleet.build(3, gpus_per_slot=2)
        assert fleet.topology == [2, 2, 2]

    def test_legacy_spec_list_still_means_one_gpu_slots(self):
        fleet = GpuFleet(["GTX 1660 Super", "GTX 1660 Super"])
        assert fleet.topology == [1, 1]
        # And the pre-topology alias keeps working.
        assert fleet.devices is fleet.slots


class TestHeterogeneousFleetResults:
    def test_100_graphs_4_tenants_match_serial_on_mixed_topology(self):
        """Acceptance: a mixed [2, 1] fleet serving 100 graphs across 4
        tenants is result-identical to the serial reference — multi-GPU
        slots never change numerics."""
        report, submitted = serve_mixed(100, tenants=4)
        assert report.metrics.completed == 100
        assert report.metrics.tenants == 4
        # Both slot shapes actually served traffic.
        slots_used = {r.device_index for r in report.results}
        assert slots_used == {0, 1}
        by_id = {r.request_id: r for r in report.results}
        for request_id, graph in submitted:
            reference = execute_serial(graph)
            result = by_id[request_id]
            for name, expected in reference.items():
                assert np.array_equal(result.outputs[name], expected), (
                    f"request {request_id} ({graph.name}) diverged on"
                    f" {name}"
                )

    def test_multi_slot_replay_matches_inference(self):
        """On a 2-GPU slot the capture-replay fast path must agree with
        the dependency-inference path bit for bit."""
        service = SchedulerService(
            fleet_topology=[2],
            config=ServeConfig(batch_window=0.0),
        )
        graphs = mixed_workload_graphs(4, seed=3, workloads=["vec"])
        submitted = [
            (service.submit("t0", g, arrival_time=i * 1e-3), g)
            for i, g in enumerate(graphs)
        ]
        report = service.run()
        ordered = sorted(report.results, key=lambda r: r.request_id)
        assert not ordered[0].replayed
        assert all(r.replayed for r in ordered[1:])
        by_id = {r.request_id: r for r in report.results}
        for request_id, graph in submitted:
            reference = execute_serial(graph)
            for name, expected in reference.items():
                assert np.array_equal(
                    by_id[request_id].outputs[name], expected
                )


class TestSlotKeyedCaptures:
    def test_one_plan_per_topology_per_slot_shape(self):
        """A [2, 1] fleet derives separate plans for the 2-GPU and the
        1-GPU slot even for the same graph topology."""
        service = SchedulerService(
            fleet_topology=[2, 1],
            config=ServeConfig(
                batch_window=0.0,
                placement=DevicePlacementPolicy.ROUND_ROBIN,
            ),
        )
        graphs = mixed_workload_graphs(6, seed=9, workloads=["vec"])
        for i, g in enumerate(graphs):
            service.submit("t", g, arrival_time=i * 1e-3)
        report = service.run()
        # Round-robin alternates slots: one topology x two slot shapes.
        assert len(service.cache) == 2
        assert {r.device_index for r in report.results} == {0, 1}

    def test_shape_key_distinguishes_count_and_model(self):
        fleet = GpuFleet([2, 1, (1, "Tesla P100")])
        keys = {slot.shape_key for slot in fleet.slots}
        assert len(keys) == 3


class TestDeterministicPlacement:
    def test_least_loaded_ties_resolve_in_slot_id_order(self):
        fleet = GpuFleet([1, 1, 1])
        graph = mixed_workload_graphs(1, workloads=["vec"])[0]
        from repro.serve.request import GraphRequest

        request = GraphRequest(tenant="t", graph=graph)
        # All slots idle at clock 0: the tie must break on slot id.
        assert fleet.choose(request).index == 0

    def test_serving_replay_is_reproducible(self):
        """Two identical serving runs under least-loaded placement make
        identical slot assignments and produce identical timings."""
        def run_once():
            report, _ = serve_mixed(
                18, tenants=3, fleet_topology=(2, 1, 1), seed=21
            )
            by_id = sorted(report.results, key=lambda r: r.request_id)
            return (
                [r.device_index for r in by_id],
                [r.finish_time for r in by_id],
            )

        slots_a, times_a = run_once()
        slots_b, times_b = run_once()
        assert slots_a == slots_b
        assert times_a == times_b


class TestServeBenchWindowKnob:
    def test_movement_window_flag_engages_batched_windowing(self):
        """Regression: ``serve_bench(movement_window=N)`` must actually
        run the windowed BATCHED policy — not silently keep the eager
        default and merely report the knob in the JSON summary."""
        from repro.harness.serving import report_summary, serve_bench

        report = serve_bench(
            tenants=2, requests=8, fleet="2,1", movement_window=4
        )
        assert report.config.scheduler.movement is (
            MovementPolicy.BATCHED
        )
        labels = [
            r.label
            for slot in report.fleet.slots
            for r in slot.engine.timeline.transfers()
        ]
        assert any("window[" in lab for lab in labels)
        assert report_summary(report)["movement_window"] == 4


class TestServingCoalescingWindow:
    def test_window_zero_bit_identical_to_per_acquire_batched(self):
        """Regression: ``movement_window=0`` must be bit-identical to
        per-acquire BATCHED on the serving path — same results, same
        timeline intervals, same makespan."""
        def run(window):
            report, submitted = serve_mixed(
                9,
                tenants=3,
                fleet_topology=(2, 1),
                scheduler=SchedulerConfig(
                    movement=MovementPolicy.BATCHED,
                    movement_window=window,
                ),
            )
            timelines = [
                [
                    (r.label, r.kind.value, r.start, r.end, r.nbytes)
                    for r in slot.engine.timeline
                ]
                for slot in report.fleet.slots
            ]
            outputs = {
                r.request_id: r.outputs
                for r in report.results
            }
            return timelines, outputs

        tl_plain, out_plain = run(0)
        # Re-running with window=0 again guards flakiness in the probe
        # itself, then the real comparison: the default BATCHED config.
        def run_default():
            report, _ = serve_mixed(
                9,
                tenants=3,
                fleet_topology=(2, 1),
                scheduler=SchedulerConfig(
                    movement=MovementPolicy.BATCHED,
                ),
            )
            return [
                [
                    (r.label, r.kind.value, r.start, r.end, r.nbytes)
                    for r in slot.engine.timeline
                ]
                for slot in report.fleet.slots
            ]

        assert tl_plain == run_default()

    def test_window_preserves_results_and_reduces_htod_ops(self):
        from repro.gpusim.timeline import IntervalKind

        def run(window):
            report, submitted = serve_mixed(
                12,
                tenants=3,
                fleet_topology=(2, 1),
                scheduler=SchedulerConfig(
                    movement=MovementPolicy.BATCHED,
                    movement_window=window,
                ),
            )
            htod = sum(
                1
                for slot in report.fleet.slots
                for r in slot.engine.timeline.transfers()
                if r.kind is IntervalKind.TRANSFER_HTOD
            )
            by_id = {r.request_id: r for r in report.results}
            # Request ids are a process-global counter: key outputs by
            # submission order so the two runs are comparable.
            outputs = [
                by_id[request_id].outputs for request_id, _ in submitted
            ]
            return htod, outputs

        htod_plain, outputs_plain = run(0)
        htod_win, outputs_win = run(6)
        assert htod_win <= htod_plain
        for plain, windowed in zip(outputs_plain, outputs_win):
            assert set(plain) == set(windowed)
            for name, value in plain.items():
                assert np.array_equal(value, windowed[name])
