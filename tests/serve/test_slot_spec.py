"""Slot/fleet spec validation: every malformed spec is a ConfigError.

Satellite coverage for :func:`normalize_slot_spec` edge cases — the
function sits on both the CLI path (``--fleet``/``--cluster``) and the
programmatic ``GpuFleet([...])`` path, so misconfiguration must fail
with :class:`ConfigError` (which stays a :class:`ValueError` for
callers with pre-existing ``except ValueError`` handling).
"""

import pytest

from repro.errors import ConfigError, ReproError
from repro.gpusim.specs import gpu_by_name
from repro.serve import parse_fleet_spec
from repro.serve.fleet import normalize_slot_spec

SPEC = gpu_by_name("GTX 1660 Super")
P100 = gpu_by_name("Tesla P100")


class TestConfigErrorContract:
    def test_config_error_is_a_value_error(self):
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, ReproError)

    def test_parse_fleet_spec_raises_config_error(self):
        with pytest.raises(ConfigError):
            parse_fleet_spec("")
        with pytest.raises(ConfigError):
            parse_fleet_spec("2,zero")
        with pytest.raises(ConfigError):
            parse_fleet_spec("2,0")


class TestNormalizeSlotSpec:
    def test_int_replicates_default_gpu(self):
        assert normalize_slot_spec(3, SPEC) == [SPEC, SPEC, SPEC]

    def test_default_gpu_may_be_a_name(self):
        assert normalize_slot_spec(2, "Tesla P100") == [P100, P100]

    def test_name_and_spec_make_single_gpu_slots(self):
        assert normalize_slot_spec("Tesla P100", SPEC) == [P100]
        assert normalize_slot_spec(P100, SPEC) == [P100]

    def test_count_model_pair(self):
        assert normalize_slot_spec((2, "Tesla P100"), SPEC) == [
            P100,
            P100,
        ]

    def test_heterogeneous_sequence_mixes_names_and_specs(self):
        assert normalize_slot_spec(["Tesla P100", SPEC], SPEC) == [
            P100,
            SPEC,
        ]

    def test_empty_sequence_rejected(self):
        with pytest.raises(ConfigError):
            normalize_slot_spec([], SPEC)
        with pytest.raises(ConfigError):
            normalize_slot_spec((), SPEC)

    @pytest.mark.parametrize("count", [0, -1])
    def test_nonpositive_count_rejected(self, count):
        with pytest.raises(ConfigError):
            normalize_slot_spec(count, SPEC)
        with pytest.raises(ConfigError):
            normalize_slot_spec((count, "Tesla P100"), SPEC)

    def test_bool_rejected(self):
        # bool is an int subclass; True must not mean "1 GPU".
        with pytest.raises(ConfigError):
            normalize_slot_spec(True, SPEC)

    def test_mixed_model_and_int_list_rejected(self):
        with pytest.raises(ConfigError, match="GPU names or"):
            normalize_slot_spec(["Tesla P100", 2], SPEC)
        with pytest.raises(ConfigError, match="GPU names or"):
            normalize_slot_spec([2, 2], SPEC)

    def test_unknown_gpu_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown GPU model"):
            normalize_slot_spec("NotARealGPU 9000", SPEC)
        with pytest.raises(ConfigError, match="unknown GPU model"):
            normalize_slot_spec((2, "NotARealGPU 9000"), SPEC)
        with pytest.raises(ConfigError, match="unknown GPU model"):
            normalize_slot_spec(["NotARealGPU 9000"], SPEC)

    def test_legacy_value_error_handlers_still_catch(self):
        with pytest.raises(ValueError):
            normalize_slot_spec([], SPEC)
