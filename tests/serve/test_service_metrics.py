"""Unit tests for the service-level metrics helpers."""

import pytest

from repro.gpusim.timeline import IntervalKind, Timeline, TimelineRecord
from repro.metrics.service import (
    LatencyStats,
    busy_seconds,
    compute_service_metrics,
    percentile,
)
from repro.serve.request import GraphResult


class TestPercentile:
    def test_median_of_odd_sequence(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50) == pytest.approx(5.0)
        assert percentile([0.0, 10.0], 95) == pytest.approx(9.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


def record(start, end, kind=IntervalKind.KERNEL, stream=1):
    return TimelineRecord(
        op_id=0,
        label="k",
        kind=kind,
        stream_id=stream,
        start=start,
        end=end,
    )


class TestBusySeconds:
    def test_disjoint_intervals_sum(self):
        t = Timeline()
        t.add(record(0.0, 1.0))
        t.add(record(2.0, 3.0))
        assert busy_seconds(t) == pytest.approx(2.0)

    def test_overlaps_count_once(self):
        t = Timeline()
        t.add(record(0.0, 2.0))
        t.add(record(1.0, 3.0))
        assert busy_seconds(t) == pytest.approx(3.0)

    def test_events_ignored(self):
        t = Timeline()
        t.add(record(0.0, 1.0, kind=IntervalKind.EVENT))
        assert busy_seconds(t) == 0.0

    def test_transfers_optional(self):
        t = Timeline()
        t.add(record(0.0, 1.0, kind=IntervalKind.TRANSFER_HTOD))
        assert busy_seconds(t) == pytest.approx(1.0)
        assert busy_seconds(t, include_transfers=False) == 0.0


class TestLatencyStats:
    def test_from_values(self):
        stats = LatencyStats.from_values([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.p50 == pytest.approx(2.5)
        assert stats.worst == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_values([])


def result(request_id, tenant, arrival, start, finish, batch_size=1):
    return GraphResult(
        request_id=request_id,
        tenant=tenant,
        graph_name="g",
        outputs={},
        arrival_time=arrival,
        start_time=start,
        finish_time=finish,
        device_index=0,
        batch_id=1,
        batch_size=batch_size,
    )


class TestComputeServiceMetrics:
    def test_aggregates(self):
        results = [
            result(1, "a", 0.0, 0.0, 1.0),
            result(2, "b", 0.0, 1.0, 2.0, batch_size=2),
        ]
        device = Timeline()
        device.add(record(0.0, 1.5))
        metrics = compute_service_metrics(
            results, [device], batches=2, capture_hits=1, capture_misses=1
        )
        assert metrics.completed == 2
        assert metrics.tenants == 2
        assert metrics.makespan == pytest.approx(2.0)
        assert metrics.throughput_rps == pytest.approx(1.0)
        assert metrics.latency.worst == pytest.approx(2.0)
        assert metrics.queue_wait.worst == pytest.approx(1.0)
        assert metrics.device_utilization[0] == pytest.approx(0.75)
        assert metrics.mean_utilization == pytest.approx(0.75)
        assert metrics.batched_requests == 1
        assert set(metrics.per_tenant) == {"a", "b"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_service_metrics([], [])
