"""Fault-injection subsystem: plans, lifecycles, self-healing serving.

The invariants pinned here are the PR's acceptance bar:

* every submitted request reaches a terminal status under any fault
  plan (no hangs, even total fleet loss);
* completed requests stay bit-identical to serial execution;
* same seed + same plan => bit-identical reports across runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    AdmissionShedError,
    FaultError,
    ReproError,
    RequestTimeoutError,
    SlotFailedError,
)
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    SlotHealth,
    SlotLifecycle,
)
from repro.harness.serving import report_fingerprint
from repro.serve import (
    GpuFleet,
    RequestStatus,
    SchedulerService,
    ServeConfig,
    execute_serial,
    reset_request_ids,
)
from repro.serve.workloads import mixed_workload_graphs


# -- fault plans -----------------------------------------------------------


class TestFaultPlan:
    def test_parse_describe_round_trip(self):
        text = (
            "crash:slot=1,at=0.002;restart:slot=1,at=0.004,warmup=0.0005;"
            "degrade:slot=0,at=0.001,factor=2.5;"
            "transfer-fault:slot=2,at=0.003"
        )
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.describe()) == plan

    def test_specs_sort_by_time(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(FaultKind.CRASH, 1, 5e-3),
                FaultSpec(FaultKind.DRAIN, 0, 1e-3),
            )
        )
        assert [s.at for s in plan] == [1e-3, 5e-3]

    def test_for_slot_filters(self):
        plan = FaultPlan.parse(
            "crash:slot=0,at=1e-3;crash:slot=1,at=2e-3;drain:slot=0,at=3e-3"
        )
        assert [s.kind for s in plan.for_slot(0)] == [
            FaultKind.CRASH,
            FaultKind.DRAIN,
        ]
        assert plan.max_slot() == 1
        assert FaultPlan().max_slot() == -1

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:slot=0,at=1e-3",          # unknown kind
            "crash:slot=0,at=1e-3,boom=2",     # unknown field
            "crash:slot=0",                    # missing at=
            "crash:at=1e-3",                   # missing slot=
            "crash:slot=zero,at=1e-3",         # non-numeric
            "crash:slot",                      # not key=value
        ],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.CRASH, -1, 1e-3)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.CRASH, 0, -1e-3)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.DEGRADE, 0, 1e-3, factor=0.5)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.RESTART, 0, 1e-3, warmup=-1.0)

    def test_random_is_pure_function_of_seed(self):
        a = FaultPlan.random(42, slots=4, horizon=10e-3)
        b = FaultPlan.random(42, slots=4, horizon=10e-3)
        c = FaultPlan.random(43, slots=4, horizon=10e-3)
        assert a == b
        assert a.seed == 42
        assert a != c
        assert 1 <= len(a) <= 2 * 4 + 4  # events + optional restarts

    def test_random_respects_slot_bound(self):
        for seed in range(20):
            plan = FaultPlan.random(seed, slots=3, horizon=5e-3)
            assert plan.max_slot() <= 2


class TestNodeScopedPlans:
    """``node=`` scope (cluster faults) in the same DSL."""

    def test_parse_describe_round_trip(self):
        text = (
            "crash:node=1,at=0.002;restart:node=1,at=0.004,warmup=0.0005;"
            "drain:node=0,at=0.001;crash:slot=2,at=0.003"
        )
        plan = FaultPlan.parse(text)
        assert FaultPlan.parse(plan.describe()) == plan
        assert "node=1" in plan.describe()

    def test_scope_split_and_filters(self):
        plan = FaultPlan.parse(
            "crash:node=0,at=1e-3;crash:node=1,at=2e-3;"
            "drain:node=0,at=3e-3;crash:slot=1,at=4e-3"
        )
        assert [s.kind for s in plan.for_node(0)] == [
            FaultKind.CRASH,
            FaultKind.DRAIN,
        ]
        assert len(plan.node_scoped()) == 3
        assert len(plan.slot_scoped()) == 1
        assert plan.max_node() == 1
        assert FaultPlan().max_node() == -1
        # for_slot must not see node-scoped specs.
        assert [s.at for s in plan.for_slot(1)] == [4e-3]

    @pytest.mark.parametrize(
        "bad",
        [
            "crash:node=0,slot=1,at=1e-3",  # both scopes
            "crash:at=1e-3",                # neither scope
            "crash:node=minus,at=1e-3",     # non-numeric node
        ],
    )
    def test_parse_rejects_bad_scopes(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_spec_cannot_carry_both_scopes(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.CRASH, 0, 1e-3, node=1)
        spec = FaultSpec.for_node(FaultKind.CRASH, 1, 1e-3)
        assert spec.node_scoped
        assert spec.node == 1

    def test_random_nodes_is_pure_function_of_seed(self):
        a = FaultPlan.random_nodes(42, nodes=2, horizon=10e-3)
        b = FaultPlan.random_nodes(42, nodes=2, horizon=10e-3)
        c = FaultPlan.random_nodes(43, nodes=2, horizon=10e-3)
        assert a == b
        assert a.seed == 42
        assert a != c
        assert all(s.node_scoped for s in a)

    def test_random_nodes_respects_node_bound(self):
        for seed in range(20):
            plan = FaultPlan.random_nodes(seed, nodes=2, horizon=5e-3)
            assert plan.max_node() <= 1
            assert plan.max_slot() == -1


# -- the slot state machine ------------------------------------------------


class TestSlotLifecycle:
    def test_crash_then_restart_then_healthy(self):
        lc = SlotLifecycle(
            0,
            (
                FaultSpec(FaultKind.CRASH, 0, 1e-3),
                FaultSpec(FaultKind.RESTART, 0, 2e-3, warmup=5e-4),
            ),
        )
        assert lc.state is SlotHealth.HEALTHY
        lc.advance(1.5e-3)
        assert lc.state is SlotHealth.DOWN
        assert not lc.admitting
        lc.advance(2.1e-3)
        assert lc.state is SlotHealth.RESTARTING
        assert lc.earliest_admit(2.1e-3) == pytest.approx(2.5e-3)
        lc.advance(3e-3)
        assert lc.state is SlotHealth.HEALTHY
        assert lc.admitting

    def test_drain_settles_to_down(self):
        lc = SlotLifecycle(0, (FaultSpec(FaultKind.DRAIN, 0, 1e-3),))
        made = lc.advance(2e-3)
        # The drain protocol is observable: DRAINING then DOWN.
        assert [t.after for t in made] == [
            SlotHealth.DRAINING,
            SlotHealth.DOWN,
        ]
        assert lc.earliest_admit(2e-3) is None  # no restart scheduled

    def test_degrade_sets_slowdown_and_restart_clears_it(self):
        lc = SlotLifecycle(
            0,
            (
                FaultSpec(FaultKind.DEGRADE, 0, 1e-3, factor=3.0),
                FaultSpec(FaultKind.CRASH, 0, 2e-3),
                FaultSpec(FaultKind.RESTART, 0, 3e-3),
            ),
        )
        lc.advance(1.5e-3)
        assert lc.state is SlotHealth.DEGRADED
        assert lc.admitting
        assert lc.slowdown == 3.0
        lc.advance(4e-3)  # crash, restart (no warmup), settle
        assert lc.state is SlotHealth.HEALTHY
        assert lc.slowdown == 1.0

    def test_transfer_fault_consumed_once(self):
        lc = SlotLifecycle(
            0, (FaultSpec(FaultKind.TRANSFER_FAULT, 0, 1e-3),)
        )
        lc.advance(2e-3)
        assert lc.state is SlotHealth.HEALTHY  # not a state change
        assert lc.take_transfer_fault(2e-3)
        assert not lc.take_transfer_fault(2e-3)

    def test_advance_rejects_rewind(self):
        lc = SlotLifecycle(0)
        lc.advance(1e-3)
        with pytest.raises(ValueError):
            lc.advance(5e-4)

    def test_earliest_admit_scans_future_restart(self):
        lc = SlotLifecycle(
            0,
            (
                FaultSpec(FaultKind.CRASH, 0, 1e-3),
                FaultSpec(FaultKind.RESTART, 0, 5e-3, warmup=1e-3),
            ),
        )
        lc.advance(2e-3)
        assert lc.state is SlotHealth.DOWN
        assert lc.earliest_admit(2e-3) == pytest.approx(6e-3)

    def test_crash_mid_restart_cancels_warmup(self):
        lc = SlotLifecycle(
            0,
            (
                FaultSpec(FaultKind.CRASH, 0, 1e-3),
                FaultSpec(FaultKind.RESTART, 0, 2e-3, warmup=5e-3),
            ),
        )
        lc.advance(2.5e-3)
        assert lc.state is SlotHealth.RESTARTING
        lc2 = SlotLifecycle(
            0,
            (
                FaultSpec(FaultKind.CRASH, 0, 1e-3),
                FaultSpec(FaultKind.RESTART, 0, 2e-3, warmup=5e-3),
                FaultSpec(FaultKind.CRASH, 0, 3e-3),
            ),
        )
        lc2.advance(10e-3)
        assert lc2.state is SlotHealth.DOWN  # second crash killed warm-up


# -- serving under faults --------------------------------------------------


def run_faulted(
    plan,
    requests=10,
    fleet_size=3,
    spacing=3e-4,
    deadline=None,
    reset_ids=False,
    **config_kw,
):
    """One faulted serving run over the mixed workloads; returns
    (report, submitted)."""
    if reset_ids:
        reset_request_ids()
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    service = SchedulerService(
        fleet_size=fleet_size,
        config=ServeConfig(faults=plan, **config_kw),
    )
    submitted = []
    for i, graph in enumerate(mixed_workload_graphs(requests, seed=5)):
        arrival = i * spacing
        submitted.append(
            (
                service.submit(
                    f"t{i % 3}",
                    graph,
                    arrival_time=arrival,
                    deadline=(
                        arrival + deadline if deadline is not None else None
                    ),
                ),
                graph,
            )
        )
    return service.run(), submitted


def assert_all_terminal(report, submitted):
    by_id = {r.request_id: r for r in report.results}
    assert sorted(by_id) == sorted(rid for rid, _ in submitted)
    return by_id


class TestServiceUnderFaults:
    def test_crash_retries_onto_survivors(self):
        report, submitted = run_faulted(
            "crash:slot=1,at=1e-3", fleet_size=3
        )
        by_id = assert_all_terminal(report, submitted)
        m = report.metrics
        assert m.completed == len(submitted)
        assert report.counters["faults.injected"] == 1
        assert report.counters["faults.retries"] >= 1
        assert report.counters["faults.replacements"] >= 1
        # Nothing lands on the dead slot after the crash.
        for r in report.results:
            if r.start_time > 1.5e-3:
                assert r.device_index != 1
        # Completed outputs still match serial.
        for request_id, graph in submitted:
            result = by_id[request_id]
            for name, expected in execute_serial(graph).items():
                assert np.array_equal(result.outputs[name], expected)

    def test_retry_exhaustion_turns_failed(self):
        # One slot, crashed, never restarted, zero retries allowed: the
        # in-flight batch fails terminally, the queue tail sheds.
        report, submitted = run_faulted(
            "crash:slot=0,at=1e-3",
            fleet_size=1,
            requests=6,
            max_retries=0,
        )
        assert_all_terminal(report, submitted)
        m = report.metrics
        assert m.failed >= 1
        assert m.completed + m.shed + m.failed == len(submitted)
        failed = [r for r in report.results if not r.ok]
        for r in failed:
            with pytest.raises((SlotFailedError, AdmissionShedError)):
                r.raise_for_status()

    def test_exponential_backoff_spaces_retries(self):
        # at=0: armed before the first dispatch (a transfer fault only
        # strikes batches dispatched at/after its time).
        plan = FaultPlan.parse(
            "transfer-fault:slot=0,at=0;transfer-fault:slot=0,at=0"
        )
        report, submitted = run_faulted(
            plan,
            fleet_size=1,
            requests=1,
            spacing=0.0,
            batch_window=0.0,
            retry_backoff_us=100.0,
        )
        (result,) = report.results
        assert result.ok
        # Two transfer faults -> two retries -> three attempts.
        assert result.attempts == 3
        assert report.counters["faults.retries"] == 2

    def test_drain_finishes_in_flight_then_stops_admitting(self):
        report, submitted = run_faulted(
            "drain:slot=0,at=5e-4", fleet_size=2, requests=8
        )
        by_id = assert_all_terminal(report, submitted)
        assert report.metrics.completed == len(submitted)
        # Drained slots lose no work: nothing retried, nothing failed.
        assert report.counters["faults.retries"] == 0
        for r in report.results:
            if r.start_time > 1e-3:
                assert r.device_index != 0
        for request_id, graph in submitted:
            result = by_id[request_id]
            for name, expected in execute_serial(graph).items():
                assert np.array_equal(result.outputs[name], expected)

    def test_degraded_slot_runs_slower_but_correct(self):
        fast, _ = run_faulted(
            FaultPlan(), fleet_size=1, requests=6
        )
        slow, submitted = run_faulted(
            "degrade:slot=0,at=0,factor=3", fleet_size=1, requests=6
        )
        assert slow.metrics.completed == fast.metrics.completed == 6
        assert slow.metrics.makespan > fast.metrics.makespan
        by_id = {r.request_id: r for r in slow.results}
        for request_id, graph in submitted:
            result = by_id[request_id]
            for name, expected in execute_serial(graph).items():
                assert np.array_equal(result.outputs[name], expected)

    def test_total_blackout_sheds_instead_of_hanging(self):
        report, submitted = run_faulted(
            "crash:slot=0,at=1e-3;crash:slot=1,at=1e-3",
            fleet_size=2,
            requests=10,
        )
        assert_all_terminal(report, submitted)
        m = report.metrics
        assert m.shed > 0
        assert m.terminal == len(submitted)
        shed = [
            r for r in report.results if r.status is RequestStatus.SHED
        ]
        assert report.counters["faults.shed"] == len(shed)
        for r in shed:
            assert r.device_index == -1
            assert r.outputs == {}
            with pytest.raises(AdmissionShedError):
                r.raise_for_status()

    def test_blackout_with_pending_restart_fast_forwards(self):
        report, submitted = run_faulted(
            "crash:slot=0,at=1e-3;crash:slot=1,at=1e-3;"
            "restart:slot=0,at=2e-3,warmup=1e-4",
            fleet_size=2,
            requests=10,
        )
        assert_all_terminal(report, submitted)
        assert report.metrics.completed == len(submitted)

    def test_deadline_times_out(self):
        report, submitted = run_faulted(
            FaultPlan(),
            fleet_size=1,
            requests=8,
            spacing=0.0,
            deadline=5e-4,  # far too tight for 8 queued graphs
        )
        assert_all_terminal(report, submitted)
        m = report.metrics
        assert m.timed_out > 0
        timed_out = [
            r for r in report.results if r.status is RequestStatus.TIMEOUT
        ]
        for r in timed_out:
            assert r.outputs == {}
            with pytest.raises(RequestTimeoutError):
                r.raise_for_status()

    def test_watermark_shed_keeps_bounded_queue(self):
        # 1 of 4 slots survives (25% < the 50% watermark) with a deep
        # backlog: graceful degradation sheds the excess.
        plan = ";".join(f"crash:slot={s},at=5e-4" for s in (1, 2, 3))
        report, submitted = run_faulted(
            plan,
            fleet_size=4,
            requests=16,
            spacing=0.0,
            shed_queue_per_gpu=2,
        )
        assert_all_terminal(report, submitted)
        m = report.metrics
        assert m.shed > 0
        assert m.completed + m.shed + m.failed == len(submitted)

    def test_fault_knobs_rejected_on_compute_sessions(self):
        from repro.core.policies import SchedulerConfig
        from repro.errors import ConfigError

        for kw in (
            {"max_retries": 2},
            {"retry_backoff_us": 50.0},
            {"shed_watermark": 0.5},
        ):
            with pytest.raises(ConfigError):
                SchedulerConfig(**kw).validate(serving=False)
            SchedulerConfig(**kw).validate(serving=True)  # fine

    def test_fault_plan_outside_fleet_rejected(self):
        with pytest.raises(ValueError):
            SchedulerService(
                fleet_size=2,
                config=ServeConfig(faults="crash:slot=5,at=1e-3"),
            )

    def test_fleet_attach_faults_validates(self):
        fleet = GpuFleet([1, 1])
        with pytest.raises(ValueError):
            fleet.attach_faults(FaultPlan.parse("crash:slot=2,at=1e-3"))

    def test_fault_free_run_has_no_fault_counters(self):
        report, _ = run_faulted(None, requests=4)
        assert not any(
            k.startswith("faults.") for k in report.counters
        )

    def test_error_hierarchy(self):
        for exc in (
            FaultError,
            SlotFailedError,
            RequestTimeoutError,
            AdmissionShedError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(SlotFailedError, FaultError)
        assert issubclass(RequestTimeoutError, FaultError)
        assert issubclass(AdmissionShedError, FaultError)


# -- determinism ------------------------------------------------------------


class TestFaultDeterminism:
    def test_same_plan_same_seed_bit_identical(self):
        plan = "crash:slot=1,at=1e-3;restart:slot=1,at=3e-3,warmup=2e-4"
        a, _ = run_faulted(plan, reset_ids=True)
        b, _ = run_faulted(plan, reset_ids=True)
        assert report_fingerprint(a) == report_fingerprint(b)

    def test_different_plans_fingerprint_differently(self):
        a, _ = run_faulted("crash:slot=1,at=1e-3", reset_ids=True)
        b, _ = run_faulted("crash:slot=2,at=1e-3", reset_ids=True)
        assert report_fingerprint(a) != report_fingerprint(b)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_plans_replay_bit_identical_on_2211(self, seed):
        """Property (the tentpole's acceptance check): ANY seeded fault
        plan over the 2,2,1,1 fleet yields bit-identical reports across
        two runs, and every completed request matches serial."""
        plan = FaultPlan.random(seed, slots=4, horizon=3e-3)

        def run_once():
            reset_request_ids()
            service = SchedulerService(
                fleet_topology=[2, 2, 1, 1],
                config=ServeConfig(faults=plan),
            )
            submitted = []
            for i, graph in enumerate(
                mixed_workload_graphs(8, seed=seed % 17)
            ):
                submitted.append(
                    (
                        service.submit(
                            f"t{i % 3}", graph, arrival_time=i * 3e-4
                        ),
                        graph,
                    )
                )
            return service.run(), submitted

        first, submitted = run_once()
        second, _ = run_once()
        assert report_fingerprint(first) == report_fingerprint(second)
        by_id = assert_all_terminal(first, submitted)
        assert first.metrics.terminal == len(submitted)
        for request_id, graph in submitted:
            result = by_id[request_id]
            if not result.ok:
                continue
            for name, expected in execute_serial(graph).items():
                assert np.array_equal(result.outputs[name], expected)
