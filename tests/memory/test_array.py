"""Tests for DeviceArray: values, coherence marks, hooks, allocation."""

import numpy as np
import pytest

from repro.errors import OutOfMemoryError
from repro.gpusim import Device, GTX960
from repro.memory import AccessKind, CoherenceState, DeviceArray
from repro.memory.pages import PAGE_SIZE_BYTES


class TestBasics:
    def test_zero_initialized(self):
        a = DeviceArray(8)
        assert np.all(a.kernel_view == 0)
        assert a.state is CoherenceState.SHARED

    def test_shape_dtype(self):
        a = DeviceArray((4, 5), dtype=np.float64)
        assert a.shape == (4, 5)
        assert a.dtype == np.float64
        assert a.nbytes == 4 * 5 * 8
        assert a.size == 20
        assert len(a) == 4

    def test_getset_roundtrip(self):
        a = DeviceArray(4)
        a[2] = 7.5
        assert a[2] == 7.5

    def test_fill(self):
        a = DeviceArray(10)
        a.fill(3.0)
        assert np.all(a.to_numpy() == 3.0)

    def test_copy_from_host_shape_check(self):
        a = DeviceArray(4)
        with pytest.raises(ValueError):
            a.copy_from_host(np.zeros(5))

    def test_copy_from_host_values(self):
        a = DeviceArray(3)
        a.copy_from_host(np.array([1.0, 2.0, 3.0]))
        assert list(a.to_numpy()) == [1.0, 2.0, 3.0]

    def test_to_numpy_is_copy(self):
        a = DeviceArray(3)
        out = a.to_numpy()
        out[0] = 99
        assert a[0] == 0


class TestCoherenceMarks:
    def test_gpu_write_invalidates_host(self):
        a = DeviceArray(4)
        a.mark_gpu_write()
        assert a.state is CoherenceState.DEVICE_ONLY
        assert a.stale_host_bytes() > 0

    def test_cpu_write_invalidates_device(self):
        a = DeviceArray(4)
        a.mark_cpu_write()
        assert a.state is CoherenceState.HOST_ONLY
        assert a.stale_device_bytes() == a.nbytes

    def test_stale_bytes_zero_when_shared(self):
        a = DeviceArray(4)
        assert a.stale_device_bytes() == 0
        assert a.stale_host_bytes() == 0

    def test_stale_host_bytes_page_rounded(self):
        n = (3 * PAGE_SIZE_BYTES) // 4  # < 1 page of float32s
        a = DeviceArray(n, dtype=np.uint8)
        a.mark_gpu_write()
        # Touch 1 byte: one page migrates, capped at the array size.
        assert a.stale_host_bytes(1) == min(a.nbytes, PAGE_SIZE_BYTES)

    def test_stale_host_bytes_multi_page(self):
        a = DeviceArray(3 * PAGE_SIZE_BYTES, dtype=np.uint8)
        a.mark_gpu_write()
        assert a.stale_host_bytes(PAGE_SIZE_BYTES + 1) == 2 * PAGE_SIZE_BYTES

    def test_gpu_read_after_cpu_write_shares(self):
        a = DeviceArray(4)
        a.mark_cpu_write()
        a.mark_gpu_read()
        assert a.state is CoherenceState.SHARED


class TestAccessHook:
    def test_read_hook_called(self):
        a = DeviceArray(4)
        calls = []
        a.set_access_hook(lambda arr, kind, nb: calls.append((kind, nb)))
        _ = a[1]
        assert calls == [(AccessKind.READ, a.itemsize)]

    def test_write_hook_called(self):
        a = DeviceArray(4)
        calls = []
        a.set_access_hook(lambda arr, kind, nb: calls.append((kind, nb)))
        a[0] = 1.0
        assert calls == [(AccessKind.WRITE, a.itemsize)]

    def test_slice_touches_proportional_bytes(self):
        a = DeviceArray(100)
        sizes = []
        a.set_access_hook(lambda arr, kind, nb: sizes.append(nb))
        _ = a[10:20]
        assert sizes == [10 * a.itemsize]

    def test_bulk_ops_touch_everything(self):
        a = DeviceArray(100)
        sizes = []
        a.set_access_hook(lambda arr, kind, nb: sizes.append(nb))
        a.fill(1.0)
        _ = a.to_numpy()
        assert sizes == [a.nbytes, a.nbytes]

    def test_kernel_view_bypasses_hook(self):
        a = DeviceArray(4)
        calls = []
        a.set_access_hook(lambda *args: calls.append(args))
        _ = a.kernel_view[0]
        a.kernel_view[1] = 2.0
        assert calls == []

    def test_hook_removal(self):
        a = DeviceArray(4)
        calls = []
        a.set_access_hook(lambda *args: calls.append(args))
        a.set_access_hook(None)
        _ = a[0]
        assert calls == []


class TestDeviceAllocation:
    def test_allocation_accounted(self):
        dev = Device(GTX960)
        a = DeviceArray(1000, dtype=np.float32, device=dev)
        assert dev.allocated_bytes == a.nbytes

    def test_free_releases(self):
        dev = Device(GTX960)
        a = DeviceArray(1000, device=dev)
        a.free()
        assert dev.allocated_bytes == 0

    def test_free_idempotent(self):
        dev = Device(GTX960)
        a = DeviceArray(1000, device=dev)
        a.free()
        a.free()
        assert dev.allocated_bytes == 0

    def test_use_after_free_rejected(self):
        a = DeviceArray(4)
        a.free()
        with pytest.raises(ValueError):
            _ = a[0]

    def test_oom(self):
        dev = Device(GTX960)  # 2 GB
        with pytest.raises(OutOfMemoryError):
            DeviceArray(int(3e9), dtype=np.uint8, device=dev)

    def test_peak_tracking(self):
        dev = Device(GTX960)
        a = DeviceArray(1000, device=dev)
        b = DeviceArray(500, dtype=np.uint8, device=dev)
        a.free()
        assert dev.peak_allocated_bytes == 4000 + 500
        assert dev.allocated_bytes == 500
        b.free()
