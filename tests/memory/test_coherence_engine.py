"""Tests for the unified coherence & data-movement engine.

Covers the three scenarios the refactor consolidates:

* the cross-stream shared-input migration hazard (previously handled by
  per-executor ``MigrationTracker`` copies);
* partial-vs-full CPU-write invalidation through the completion-applied
  transition path;
* movement-policy equivalence: all three policies produce bit-identical
  workload outputs, with EAGER_PREFETCH strictly reducing simulated
  page-fault bytes.
"""

import numpy as np
import pytest

from repro.gpusim import Device, GTX960, GTX1660_SUPER, SimEngine
from repro.gpusim.ops import (
    KernelOp,
    KernelResourceRequest,
    OpState,
    TransferDirection,
)
from repro.gpusim.timeline import IntervalKind
from repro.memory import (
    AccessKind,
    CoherenceEngine,
    DeviceArray,
    MovementPolicy,
    PAGE_SIZE_BYTES,
)
from repro.memory.pages import CoherenceState


def make_engine(spec=GTX1660_SUPER):
    return SimEngine(Device(spec))


def host_dirty_array(n=1 << 20, name="a"):
    arr = DeviceArray(n, name=name)
    arr.mark_cpu_write()  # device copy now stale
    return arr


def kernel_op(label="k"):
    return KernelOp(
        label=label,
        resources=KernelResourceRequest(
            flops=1e9, fp64=False, dram_bytes=1e6, l2_bytes=0,
            instructions=1e6, threads_total=1 << 16,
        ),
    )


class TestCrossStreamMigrationHazard:
    """The MigrationTracker scenario: stream A issues the copy of a
    shared input; a kernel on stream B reading it must wait."""

    def test_other_stream_waits_on_inflight_migration(self):
        engine = make_engine()
        coherence = CoherenceEngine(engine)
        x = host_dirty_array(name="x")
        s1 = engine.create_stream("s1")
        s2 = engine.create_stream("s2")

        plan1 = coherence.acquire([(x, AccessKind.READ)], s1, label="k1")
        op1 = kernel_op("k1")
        coherence.release(plan1, op1)
        engine.submit(s1, op1)

        plan2 = coherence.acquire([(x, AccessKind.READ)], s2, label="k2")
        op2 = kernel_op("k2")
        coherence.release(plan2, op2)
        engine.submit(s2, op2)

        # Only one migration planned: the second acquire rides the
        # in-flight copy instead of duplicating it.
        engine.sync_all()
        htod = [
            r for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert len(htod) == 1
        # And the waiting kernel started only after the migration landed.
        k2 = next(r for r in engine.timeline.kernels() if r.label == "k2")
        assert k2.start >= htod[0].end

    def test_same_stream_rides_fifo_without_event_wait(self):
        engine = make_engine()
        coherence = CoherenceEngine(engine)
        x = host_dirty_array(name="x")
        s1 = engine.create_stream("s1")
        coherence.release(
            coherence.acquire([(x, AccessKind.READ)], s1), kernel_op("k1")
        )
        before = len(s1.pending)
        coherence.acquire([(x, AccessKind.READ)], s1)
        # No new waits or transfers were queued for the same stream.
        assert len(s1.pending) == before

    def test_transitions_commit_on_completion_not_submission(self):
        engine = make_engine()
        coherence = CoherenceEngine(engine)
        x = host_dirty_array(name="x")
        s1 = engine.create_stream("s1")
        coherence.acquire([(x, AccessKind.READ)], s1)
        # Submitted but not yet executed: committed state is untouched,
        # while the planned view already sees the copy in flight.
        assert x.state is CoherenceState.HOST_ONLY
        assert coherence.device_valid(x)
        engine.sync_all()
        assert x.state is CoherenceState.SHARED

    def test_write_marks_commit_at_kernel_completion(self):
        engine = make_engine()
        coherence = CoherenceEngine(engine)
        x = DeviceArray(1 << 20, name="x")  # SHARED: fresh UM memory
        s1 = engine.create_stream("s1")
        plan = coherence.acquire([(x, AccessKind.WRITE)], s1)
        op = kernel_op("w")
        coherence.release(plan, op)
        engine.submit(s1, op)
        assert x.state is CoherenceState.SHARED
        assert not coherence.host_valid(x)
        engine.sync_all()
        assert x.state is CoherenceState.DEVICE_ONLY


class TestCpuWriteInvalidation:
    """Partial vs full CPU-write handling through the shared path."""

    def test_partial_write_migrates_touched_pages(self):
        engine = make_engine()
        coherence = CoherenceEngine(engine)
        x = DeviceArray(4 * PAGE_SIZE_BYTES, dtype=np.uint8, name="x")
        x.mark_gpu_write()  # host copy stale
        coherence.cpu_access(x, AccessKind.WRITE, 8)
        dtoh = [
            r for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_DTOH
        ]
        assert len(dtoh) == 1
        assert dtoh[0].nbytes == PAGE_SIZE_BYTES  # page-granular RMW
        assert x.state is CoherenceState.HOST_ONLY

    def test_full_write_invalidates_without_migration(self):
        engine = make_engine()
        coherence = CoherenceEngine(engine)
        x = DeviceArray(1 << 20, name="x")
        x.mark_gpu_write()
        coherence.cpu_access(x, AccessKind.WRITE, x.nbytes)
        assert engine.timeline.transfers() == []
        assert x.state is CoherenceState.HOST_ONLY

    def test_full_write_cancels_inflight_migration_plan(self):
        """The half-updated-state regression: a full host overwrite
        during an in-flight HtoD migration must leave the engine
        planning a *fresh* upload — the dead migration's event may no
        longer vouch for the device copy."""
        engine = make_engine()
        coherence = CoherenceEngine(engine)
        x = host_dirty_array(name="x")
        s1 = engine.create_stream("s1")
        coherence.acquire([(x, AccessKind.READ)], s1)
        assert coherence.device_valid(x)  # migration in flight
        # Host fully overwrites the array before the copy lands.
        coherence.cpu_access(x, AccessKind.WRITE, x.nbytes)
        assert not coherence.device_valid(x)
        assert coherence.host_valid(x)
        # A consumer on another stream replans the upload (2 HtoD total)
        # and does not ride the dead event.
        s2 = engine.create_stream("s2")
        coherence.acquire([(x, AccessKind.READ)], s2)
        engine.sync_all()
        htod = [
            r for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert len(htod) == 2

    def test_dead_migration_completion_cannot_revalidate_device_copy(self):
        """The other interleaving of the full-write hazard: the dead
        migration *completes* (engine drains) after the invalidation but
        before the next consumer plans — its completion callback must
        not re-validate the device copy."""
        engine = make_engine()
        coherence = CoherenceEngine(engine)
        x = host_dirty_array(name="x")
        s1 = engine.create_stream("s1")
        coherence.acquire([(x, AccessKind.READ)], s1)
        coherence.cpu_access(x, AccessKind.WRITE, x.nbytes)  # invalidate
        engine.sync_all()  # dead migration lands now
        assert x.state is CoherenceState.HOST_ONLY
        assert not coherence.device_valid(x)
        s2 = engine.create_stream("s2")
        plan = coherence.acquire([(x, AccessKind.READ)], s2)
        coherence.release(plan, None)
        engine.sync_all()
        htod = [
            r for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert len(htod) == 2  # the upload was re-planned, not skipped

    def test_read_then_write_ends_host_only(self):
        engine = make_engine()
        coherence = CoherenceEngine(engine)
        x = DeviceArray(1 << 20, name="x")
        x.mark_gpu_write()
        coherence.cpu_access(x, AccessKind.READ_WRITE, 64)
        assert x.state is CoherenceState.HOST_ONLY


class TestMovementPolicies:
    def run_policy(self, policy, spec=GTX1660_SUPER):
        engine = make_engine(spec)
        coherence = CoherenceEngine(engine, policy=policy)
        a = host_dirty_array(name="a")
        b = host_dirty_array(name="b")
        s = engine.create_stream("s")
        plan = coherence.acquire(
            [(a, AccessKind.READ), (b, AccessKind.READ)], s, label="k"
        )
        op = kernel_op("k")
        coherence.release(plan, op)
        engine.submit(s, op)
        engine.sync_all()
        return engine, coherence, plan

    def test_page_fault_issues_no_transfers(self):
        engine, coherence, plan = self.run_policy(MovementPolicy.PAGE_FAULT)
        assert engine.timeline.transfers() == []
        assert plan.fault_bytes == 2 * (1 << 20) * 4
        assert coherence.fault_bytes_total == plan.fault_bytes

    def test_eager_prefetch_issues_one_transfer_per_array(self):
        engine, coherence, plan = self.run_policy(
            MovementPolicy.EAGER_PREFETCH
        )
        assert plan.fault_bytes == 0
        htod = [
            r for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert len(htod) == 2

    def test_batched_coalesces_adjacent_copies(self):
        engine, coherence, plan = self.run_policy(MovementPolicy.BATCHED)
        htod = [
            r for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert len(htod) == 1
        assert htod[0].nbytes == 2 * (1 << 20) * 4
        assert coherence.coalesced_transfers == 1

    def test_page_fault_degrades_to_eager_without_fault_support(self):
        engine, coherence, plan = self.run_policy(
            MovementPolicy.PAGE_FAULT, spec=GTX960
        )
        assert plan.fault_bytes == 0
        assert len(engine.timeline.transfers()) == 2


class TestPolicyEquivalenceOnWorkloads:
    """All three movement policies must be functionally identical on the
    benchmark suite, and eager prefetch must strictly reduce the bytes
    charged to the page-fault engine."""

    WORKLOADS = [("vec", 100_000), ("ml", 20_000), ("b&s", 50_000)]

    @pytest.mark.parametrize("name,scale", WORKLOADS)
    def test_policies_bit_identical(self, name, scale):
        from repro.workloads import Mode, create_benchmark

        results = {}
        for policy in MovementPolicy:
            bench = create_benchmark(name, scale, iterations=2)
            run = bench.run("GTX 1660 Super", Mode.PARALLEL,
                            movement=policy)
            results[policy] = run.results
        baseline = results[MovementPolicy.PAGE_FAULT]
        for policy, outs in results.items():
            assert outs == baseline, f"{policy} diverged"

    @pytest.mark.parametrize("name,scale", WORKLOADS[:2])
    def test_eager_prefetch_strictly_reduces_fault_bytes(self, name, scale):
        from repro.harness.movement import timeline_fault_bytes
        from repro.workloads import Mode, create_benchmark

        faulting = create_benchmark(name, scale, iterations=2).run(
            "GTX 1660 Super", Mode.PARALLEL,
            movement=MovementPolicy.PAGE_FAULT,
        )
        eager = create_benchmark(name, scale, iterations=2).run(
            "GTX 1660 Super", Mode.PARALLEL,
            movement=MovementPolicy.EAGER_PREFETCH,
        )
        lazy_faults = timeline_fault_bytes(faulting.timeline)
        eager_faults = timeline_fault_bytes(eager.timeline)
        assert lazy_faults > 0
        assert eager_faults < lazy_faults

    def test_movement_bench_sweep_asserts_equivalence(self):
        from repro.harness.movement import (
            render_movement_table,
            sweep_movement_policies,
        )

        cells = sweep_movement_policies(
            benchmarks=("vec",), iterations=2, execute=True
        )
        # the three policies plus the windowed-BATCHED variant
        assert len(cells) == len(MovementPolicy) + 1
        table = render_movement_table(cells)
        assert "page-fault" in table and "batched" in table
        by_label = {c.label: c for c in cells}
        windowed = by_label["batched+w4"]
        batched = by_label["batched"]
        eager = by_label["eager-prefetch"]
        assert windowed.htod_ops <= batched.htod_ops <= eager.htod_ops


class TestSubmissionWindow:
    """The cross-acquire BATCHED coalescer: a window of adjacent
    acquires merges their stale inputs into one DMA submission on a
    dedicated stream, flushed on window-full / sync / policy
    boundaries."""

    def acquire_n(self, coherence, engine, count, arrays_per=2):
        ops = []
        for i in range(count):
            arrays = [
                host_dirty_array(name=f"a{i}_{j}")
                for j in range(arrays_per)
            ]
            s = engine.create_stream(f"s{i}")
            plan = coherence.acquire(
                [(a, AccessKind.READ) for a in arrays], s, label=f"k{i}"
            )
            op = kernel_op(f"k{i}")
            coherence.release(plan, op)
            engine.submit(s, op)
            ops.append(op)
        return ops

    def htod(self, engine):
        return [
            r for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_HTOD
        ]

    def test_window_merges_adjacent_acquires(self):
        engine = make_engine()
        coherence = CoherenceEngine(
            engine, policy=MovementPolicy.BATCHED, window=4
        )
        self.acquire_n(coherence, engine, 3)
        engine.sync_all()  # pre-sync hook flushes the open window
        transfers = self.htod(engine)
        assert len(transfers) == 1
        assert transfers[0].nbytes == 6 * (1 << 20) * 4
        # 6 arrays over 3 acquires rode one submission: 5 saved.
        assert coherence.coalesced_transfers == 5

    def test_window_full_flushes_mid_stream(self):
        engine = make_engine()
        coherence = CoherenceEngine(
            engine, policy=MovementPolicy.BATCHED, window=2
        )
        self.acquire_n(coherence, engine, 3)
        engine.sync_all()
        # Two acquires filled the first window; the third flushed on
        # sync: 2 transfer submissions total.
        assert len(self.htod(engine)) == 2

    def test_window_zero_is_per_acquire(self):
        engine = make_engine()
        coherence = CoherenceEngine(
            engine, policy=MovementPolicy.BATCHED, window=0
        )
        self.acquire_n(coherence, engine, 3)
        engine.sync_all()
        assert len(self.htod(engine)) == 3

    def test_kernels_wait_for_the_merged_transfer(self):
        engine = make_engine()
        coherence = CoherenceEngine(
            engine, policy=MovementPolicy.BATCHED, window=4
        )
        self.acquire_n(coherence, engine, 3)
        engine.sync_all()
        transfer = self.htod(engine)[0]
        for record in engine.timeline.kernels():
            assert record.start >= transfer.end

    def test_cpu_access_flushes_window(self):
        engine = make_engine()
        coherence = CoherenceEngine(
            engine, policy=MovementPolicy.BATCHED, window=8
        )
        x = host_dirty_array(name="x")
        s = engine.create_stream("s")
        plan = coherence.acquire([(x, AccessKind.READ)], s)
        op = kernel_op("k")
        coherence.release(plan, op)
        engine.submit(s, op)
        y = DeviceArray(1 << 20, name="y")
        y.mark_gpu_write()
        # Host readback of an unrelated array closes the window first
        # (and its internal sync would deadlock otherwise).
        coherence.cpu_access(y, AccessKind.READ, y.nbytes)
        assert len(self.htod(engine)) == 1

    def test_policy_boundary_flushes_window(self):
        engine = make_engine()
        coherence = CoherenceEngine(
            engine, policy=MovementPolicy.BATCHED, window=8
        )
        x = host_dirty_array(name="x")
        s = engine.create_stream("s")
        coherence.release(
            coherence.acquire([(x, AccessKind.READ)], s), kernel_op("k1")
        )
        z = host_dirty_array(name="z")
        s2 = engine.create_stream("s2")
        # An eager-policy acquire is a policy boundary: the pending
        # window must flush before the eager migration submits.
        coherence.acquire(
            [(z, AccessKind.READ)], s2,
            policy=MovementPolicy.EAGER_PREFETCH,
        )
        engine.sync_all()
        labels = [r.label for r in self.htod(engine)]
        assert any("window" in lab for lab in labels)
        assert len(labels) == 2

    def test_window_results_identical_on_workload(self):
        from repro.workloads import Mode, create_benchmark

        runs = {}
        for window in (0, 4):
            bench = create_benchmark("ml", 20_000, iterations=2)
            runs[window] = bench.run(
                "GTX 1660 Super", Mode.PARALLEL,
                movement=MovementPolicy.BATCHED, movement_window=window,
            )
        assert runs[0].results == runs[4].results

    def test_window_zero_never_engages_the_coalescer(self):
        """Regression: window=0 must stay on the per-acquire BATCHED
        path — no deferral, no dedicated coalescing stream, no merged
        window transfer, no pre-sync hook — so it is bit-identical to
        the pre-window implementation by construction."""
        engine = make_engine()
        coherence = CoherenceEngine(
            engine, policy=MovementPolicy.BATCHED, window=0
        )
        x = host_dirty_array(name="x")
        y = host_dirty_array(name="y")
        s = engine.create_stream("s")
        plan = coherence.acquire(
            [(x, AccessKind.READ), (y, AccessKind.READ)], s, label="k"
        )
        op = kernel_op("k")
        coherence.release(plan, op)
        engine.submit(s, op)
        # The transfer was submitted immediately on the consumer stream
        # (per-acquire), not deferred behind a window event.
        assert coherence._win_groups == {}
        assert coherence.take_owned_streams() == ()
        assert not engine._pre_sync_hooks
        assert all(
            "coalesce" not in stream.label for stream in engine.streams
        )
        engine.sync_all()
        htod = [
            r for r in engine.timeline.transfers()
            if r.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert len(htod) == 1
        assert "window[" not in htod[0].label  # per-acquire batch label


class TestHostReadback:
    def test_cpu_read_charges_writeback_and_syncs(self):
        engine = make_engine()
        coherence = CoherenceEngine(engine)
        x = DeviceArray(1 << 20, name="x")
        x.mark_gpu_write()
        op = coherence.cpu_access(x, AccessKind.READ, x.nbytes)
        assert op is not None
        assert op.direction is TransferDirection.DEVICE_TO_HOST
        assert op.state is OpState.COMPLETE  # sync=True drained it
        assert x.state is CoherenceState.SHARED
