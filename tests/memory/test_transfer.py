"""Tests for transfer planning from coherence misses."""

import numpy as np

from repro.gpusim.ops import TransferDirection, TransferKind
from repro.memory import AccessKind, DeviceArray, TransferPlanner
from repro.memory.pages import PAGE_SIZE_BYTES


def host_dirty_array(n=1000):
    a = DeviceArray(n)
    a.mark_cpu_write()  # device copy now stale
    return a


class TestHtoDPlanning:
    def test_no_transfer_when_resident(self):
        a = DeviceArray(10)
        ops = TransferPlanner.htod_for_kernel(
            [(a, AccessKind.READ)], TransferKind.PREFETCH
        )
        assert ops == []

    def test_transfer_for_stale_read(self):
        a = host_dirty_array()
        ops = TransferPlanner.htod_for_kernel(
            [(a, AccessKind.READ)], TransferKind.PREFETCH
        )
        assert len(ops) == 1
        assert ops[0].nbytes == a.nbytes
        assert ops[0].direction is TransferDirection.HOST_TO_DEVICE
        assert ops[0].kind is TransferKind.PREFETCH

    def test_write_only_args_skip_transfer(self):
        a = host_dirty_array()
        ops = TransferPlanner.htod_for_kernel(
            [(a, AccessKind.WRITE)], TransferKind.EAGER
        )
        assert ops == []

    def test_read_write_args_transfer(self):
        a = host_dirty_array()
        ops = TransferPlanner.htod_for_kernel(
            [(a, AccessKind.READ_WRITE)], TransferKind.EAGER
        )
        assert len(ops) == 1

    def test_apply_fn_updates_coherence(self):
        a = host_dirty_array()
        [op] = TransferPlanner.htod_for_kernel(
            [(a, AccessKind.READ)], TransferKind.PREFETCH
        )
        assert a.stale_device_bytes() > 0
        op.apply_fn()
        assert a.stale_device_bytes() == 0

    def test_multiple_arrays(self):
        a, b = host_dirty_array(), DeviceArray(10)
        ops = TransferPlanner.htod_for_kernel(
            [(a, AccessKind.READ), (b, AccessKind.READ)],
            TransferKind.PREFETCH,
        )
        assert len(ops) == 1  # only the stale one


class TestFaultPlanning:
    def test_fault_bytes_counted_for_stale_reads(self):
        a, b = host_dirty_array(1000), host_dirty_array(500)
        total = TransferPlanner.fault_bytes_for_kernel(
            [(a, AccessKind.READ), (b, AccessKind.READ_WRITE)]
        )
        assert total == a.nbytes + b.nbytes

    def test_fault_bytes_zero_when_resident(self):
        a = DeviceArray(10)
        assert (
            TransferPlanner.fault_bytes_for_kernel([(a, AccessKind.READ)])
            == 0.0
        )

    def test_write_only_not_faulted(self):
        a = host_dirty_array()
        assert (
            TransferPlanner.fault_bytes_for_kernel([(a, AccessKind.WRITE)])
            == 0.0
        )


class TestDtoHPlanning:
    def test_none_when_host_valid(self):
        a = DeviceArray(10)
        assert TransferPlanner.dtoh_for_cpu_access(a, 4) is None

    def test_page_granular_writeback(self):
        a = DeviceArray(PAGE_SIZE_BYTES, dtype=np.uint8)
        a.mark_gpu_write()
        op = TransferPlanner.dtoh_for_cpu_access(a, 4)
        assert op is not None
        assert op.nbytes == PAGE_SIZE_BYTES
        assert op.direction is TransferDirection.DEVICE_TO_HOST
        assert op.kind is TransferKind.WRITEBACK

    def test_apply_marks_host_valid(self):
        a = DeviceArray(16)
        a.mark_gpu_write()
        op = TransferPlanner.dtoh_for_cpu_access(a, 4)
        op.apply_fn()
        assert a.state.host_valid
