"""Tests for transfer *planning* from coherence misses.

Planning now lives inside :class:`repro.memory.coherence.CoherenceEngine`
(the old stateless ``TransferPlanner`` is gone — one implementation, one
set of rules); these tests pin the planning rules themselves: what moves,
how many bytes, in which direction, and when the state transition lands.
"""

import numpy as np

from repro.gpusim import Device, GTX1660_SUPER, SimEngine
from repro.gpusim.ops import TransferDirection, TransferKind
from repro.gpusim.timeline import IntervalKind
from repro.memory import AccessKind, CoherenceEngine, DeviceArray, MovementPolicy
from repro.memory.pages import PAGE_SIZE_BYTES


def make_coherence(policy=MovementPolicy.EAGER_PREFETCH):
    engine = SimEngine(Device(GTX1660_SUPER))
    return engine, CoherenceEngine(engine, policy=policy)


def host_dirty_array(n=1000, name="a"):
    a = DeviceArray(n, name=name)
    a.mark_cpu_write()  # device copy now stale
    return a


def htod_records(engine):
    return [
        r for r in engine.timeline.transfers()
        if r.kind is IntervalKind.TRANSFER_HTOD
    ]


class TestHtoDPlanning:
    def test_no_transfer_when_resident(self):
        engine, coherence = make_coherence()
        a = DeviceArray(10)
        s = engine.create_stream("s")
        coherence.acquire([(a, AccessKind.READ)], s)
        engine.sync_all()
        assert htod_records(engine) == []

    def test_transfer_for_stale_read(self):
        engine, coherence = make_coherence()
        a = host_dirty_array()
        s = engine.create_stream("s")
        coherence.acquire([(a, AccessKind.READ)], s)
        engine.sync_all()
        [rec] = htod_records(engine)
        assert rec.nbytes == a.nbytes
        assert rec.meta["kind"] is TransferKind.PREFETCH

    def test_write_only_args_skip_transfer(self):
        engine, coherence = make_coherence()
        a = host_dirty_array()
        s = engine.create_stream("s")
        plan = coherence.acquire(
            [(a, AccessKind.WRITE)], s, kind=TransferKind.EAGER
        )
        engine.sync_all()
        assert htod_records(engine) == []
        assert plan.fault_bytes == 0

    def test_read_write_args_transfer(self):
        engine, coherence = make_coherence()
        a = host_dirty_array()
        s = engine.create_stream("s")
        coherence.acquire([(a, AccessKind.READ_WRITE)], s)
        engine.sync_all()
        assert len(htod_records(engine)) == 1

    def test_coherence_updates_on_completion(self):
        engine, coherence = make_coherence()
        a = host_dirty_array()
        s = engine.create_stream("s")
        coherence.acquire([(a, AccessKind.READ)], s)
        assert a.stale_device_bytes() > 0  # committed state untouched
        engine.sync_all()
        assert a.stale_device_bytes() == 0

    def test_duplicate_and_resident_arrays_planned_once(self):
        engine, coherence = make_coherence()
        a, b = host_dirty_array(name="a"), DeviceArray(10, name="b")
        s = engine.create_stream("s")
        coherence.acquire(
            [(a, AccessKind.READ), (a, AccessKind.READ),
             (b, AccessKind.READ)],
            s,
        )
        engine.sync_all()
        assert len(htod_records(engine)) == 1  # only the stale one, once


class TestFaultPlanning:
    def test_fault_bytes_counted_for_stale_reads(self):
        engine, coherence = make_coherence(MovementPolicy.PAGE_FAULT)
        a, b = host_dirty_array(1000, "a"), host_dirty_array(500, "b")
        s = engine.create_stream("s")
        plan = coherence.acquire(
            [(a, AccessKind.READ), (b, AccessKind.READ_WRITE)], s
        )
        assert plan.fault_bytes == a.nbytes + b.nbytes
        assert htod_records(engine) == []  # nothing moved eagerly

    def test_fault_bytes_zero_when_resident(self):
        engine, coherence = make_coherence(MovementPolicy.PAGE_FAULT)
        a = DeviceArray(10)
        s = engine.create_stream("s")
        plan = coherence.acquire([(a, AccessKind.READ)], s)
        assert plan.fault_bytes == 0.0

    def test_write_only_not_faulted(self):
        engine, coherence = make_coherence(MovementPolicy.PAGE_FAULT)
        a = host_dirty_array()
        s = engine.create_stream("s")
        plan = coherence.acquire([(a, AccessKind.WRITE)], s)
        assert plan.fault_bytes == 0.0


class TestDtoHPlanning:
    def test_none_when_host_valid(self):
        engine, coherence = make_coherence()
        a = DeviceArray(10)
        assert coherence.cpu_access(a, AccessKind.READ, 4) is None

    def test_page_granular_writeback(self):
        engine, coherence = make_coherence()
        a = DeviceArray(PAGE_SIZE_BYTES, dtype=np.uint8)
        a.mark_gpu_write()
        op = coherence.cpu_access(a, AccessKind.READ, 4)
        assert op is not None
        assert op.nbytes == PAGE_SIZE_BYTES
        assert op.direction is TransferDirection.DEVICE_TO_HOST
        assert op.kind is TransferKind.WRITEBACK

    def test_writeback_capped_at_array_size(self):
        engine, coherence = make_coherence()
        a = DeviceArray(16)
        a.mark_gpu_write()
        op = coherence.cpu_access(a, AccessKind.READ, 4)
        assert op is not None
        assert op.nbytes == a.nbytes  # page rounds up, cap wins

    def test_access_marks_host_valid(self):
        engine, coherence = make_coherence()
        a = DeviceArray(16)
        a.mark_gpu_write()
        coherence.cpu_access(a, AccessKind.READ, 4)
        assert a.state.host_valid
