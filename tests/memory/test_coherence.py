"""Tests for the unified-memory coherence state machine."""

from hypothesis import given, strategies as st

from repro.memory.pages import (
    PAGE_SIZE_BYTES,
    CoherenceState,
    after_cpu_read,
    after_cpu_write,
    after_gpu_read,
    after_gpu_write,
    pages_for_bytes,
)


class TestStates:
    def test_shared_valid_everywhere(self):
        assert CoherenceState.SHARED.host_valid
        assert CoherenceState.SHARED.device_valid

    def test_host_only(self):
        assert CoherenceState.HOST_ONLY.host_valid
        assert not CoherenceState.HOST_ONLY.device_valid

    def test_device_only(self):
        assert not CoherenceState.DEVICE_ONLY.host_valid
        assert CoherenceState.DEVICE_ONLY.device_valid


class TestTransitions:
    def test_gpu_read_migrates(self):
        assert after_gpu_read(CoherenceState.HOST_ONLY) is CoherenceState.SHARED
        assert after_gpu_read(CoherenceState.SHARED) is CoherenceState.SHARED
        assert (
            after_gpu_read(CoherenceState.DEVICE_ONLY)
            is CoherenceState.DEVICE_ONLY
        )

    def test_gpu_write_invalidates_host(self):
        for s in CoherenceState:
            assert after_gpu_write(s) is CoherenceState.DEVICE_ONLY

    def test_cpu_read_migrates_back(self):
        assert (
            after_cpu_read(CoherenceState.DEVICE_ONLY) is CoherenceState.SHARED
        )
        assert after_cpu_read(CoherenceState.HOST_ONLY) is CoherenceState.HOST_ONLY

    def test_cpu_write_invalidates_device(self):
        for s in CoherenceState:
            assert after_cpu_write(s) is CoherenceState.HOST_ONLY


state_strategy = st.sampled_from(list(CoherenceState))
transition_strategy = st.sampled_from(
    [after_gpu_read, after_gpu_write, after_cpu_read, after_cpu_write]
)


class TestCoherenceProperties:
    @given(state_strategy, st.lists(transition_strategy, max_size=20))
    def test_some_copy_always_valid(self, state, transitions):
        for t in transitions:
            state = t(state)
            assert state.host_valid or state.device_valid

    @given(state_strategy)
    def test_gpu_read_makes_device_valid(self, state):
        assert after_gpu_read(state).device_valid

    @given(state_strategy)
    def test_cpu_read_makes_host_valid(self, state):
        assert after_cpu_read(state).host_valid

    @given(state_strategy, transition_strategy)
    def test_transitions_idempotent(self, state, t):
        assert t(t(state)) is t(state)


class TestPages:
    def test_zero_bytes(self):
        assert pages_for_bytes(0) == 0

    def test_one_byte_is_one_page(self):
        assert pages_for_bytes(1) == 1

    def test_exact_page(self):
        assert pages_for_bytes(PAGE_SIZE_BYTES) == 1

    def test_page_plus_one(self):
        assert pages_for_bytes(PAGE_SIZE_BYTES + 1) == 2
