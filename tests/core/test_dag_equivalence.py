"""Indexed DAG inference ≡ reference frontier-scan semantics.

``repro.core.dag.ComputationDAG`` replaced the Fig. 3 frontier scans
with per-array writer/reader indexes; ``reference_dag.ReferenceDAG`` is
the frozen scan implementation.  These property tests replay identical
randomized programs — const/non-const accesses, explicit deactivations,
host syncs completing random finish events — through both and require
identical parent sets (and order), edge lists, frontier contents and
adjacency queries at every step.
"""

import random

from reference_dag import ReferenceDAG

from repro.core.dag import ComputationDAG
from repro.core.element import ComputationalElement
from repro.memory import AccessKind, DeviceArray

#: random programs checked (the ISSUE floor is 200)
NUM_PROGRAMS = 250


class _FakeEvent:
    """Stands in for a SimEvent: only ``complete`` is consulted."""

    __slots__ = ("complete",)

    def __init__(self) -> None:
        self.complete = False


def random_program(rng: random.Random):
    """A random schedule: adds (random access sets), deactivations and
    host syncs (a random subset of finish events completes)."""
    n_arrays = rng.randint(2, 6)
    steps = []
    n_elems = 0
    for _ in range(rng.randint(1, 40)):
        roll = rng.random()
        if roll < 0.70 or n_elems == 0:
            width = rng.randint(1, min(4, n_arrays))
            idxs = rng.sample(range(n_arrays), width)
            steps.append(
                ("add", [(i, rng.choice(list(AccessKind))) for i in idxs])
            )
            n_elems += 1
        elif roll < 0.85:
            steps.append(("deactivate", rng.randrange(n_elems)))
        else:
            done = rng.sample(range(n_elems), rng.randint(0, n_elems))
            steps.append(("sync", done))
    return n_arrays, steps


class _Run:
    """One DAG implementation driven through a program, with an
    index-based (implementation-independent) trace of every result."""

    def __init__(self, dag, indexed: bool, n_arrays: int) -> None:
        self.dag = dag
        self.indexed = indexed
        self.arrays = [DeviceArray(4, name=f"a{i}") for i in range(n_arrays)]
        self.elements: list[ComputationalElement] = []
        self.events: list[_FakeEvent] = []
        self.index_of: dict[int, int] = {}
        self.trace: list = []

    def _ids(self, elems) -> list[int]:
        return [self.index_of[e.element_id] for e in elems]

    def step(self, step) -> None:
        kind = step[0]
        if kind == "add":
            accesses = [(self.arrays[i], k) for i, k in step[1]]
            e = ComputationalElement(
                accesses, label=f"e{len(self.elements)}"
            )
            parents = self.dag.add(e)
            self.index_of[e.element_id] = len(self.elements)
            self.elements.append(e)
            event = _FakeEvent()
            e.finish_event = event
            self.events.append(event)
            if self.indexed:
                self.dag.watch_completion(e)
            self.trace.append(("parents", self._ids(parents)))
        elif kind == "deactivate":
            self.dag.deactivate(self.elements[step[1]])
        else:
            for i in step[1]:
                self.events[i].complete = True
            self.dag.deactivate_completed()
        self.trace.append(("frontier", self._ids(self.dag.frontier)))
        self.trace.append(self._conflict_queries())

    def _conflict_queries(self):
        """The CPU-access conflict sets the execution contexts consult,
        computed per array — indexed on the new DAG, scanned on the
        reference (the pre-refactor ``_conflicting_elements`` body)."""
        users, writers = [], []
        for array in self.arrays:
            if self.indexed:
                users.append(self._ids(self.dag.active_users(array)))
                writers.append(self._ids(self.dag.active_writers(array)))
            else:
                users.append(
                    self._ids(
                        [
                            e
                            for e in self.dag.frontier
                            if e.active and e.uses(array) is not None
                        ]
                    )
                )
                writers.append(
                    self._ids(
                        [
                            e
                            for e in self.dag.frontier
                            if e.active and e.writes_in_set(array)
                        ]
                    )
                )
        return ("conflicts", users, writers)

    def finish(self) -> None:
        edges = [
            (
                self.index_of[e.parent.element_id],
                self.index_of[e.child.element_id],
                e.array.name,
            )
            for e in self.dag.edges
        ]
        self.trace.append(("edges", edges))
        self.trace.append(
            ("children_count", [e.children_count for e in self.elements])
        )
        for e in self.elements:
            self.trace.append(
                ("adjacency", self._ids(self.dag.parents_of(e)),
                 self._ids(self.dag.children_of(e)))
            )
        self.trace.append(
            (
                "dep_sets",
                [sorted(k.value for k in e.dependency_set.values())
                 for e in self.elements],
            )
        )


def run_program(dag_cls, indexed, n_arrays, steps):
    run = _Run(dag_cls(), indexed, n_arrays)
    for step in steps:
        run.step(step)
    run.finish()
    return run.trace


class TestIndexedDagEquivalence:
    def test_random_programs_equivalent(self):
        rng = random.Random(0xDA6)
        for program in range(NUM_PROGRAMS):
            n_arrays, steps = random_program(rng)
            indexed = run_program(ComputationDAG, True, n_arrays, steps)
            reference = run_program(ReferenceDAG, False, n_arrays, steps)
            assert indexed == reference, (
                f"divergence on program {program}: {steps}"
            )

    def test_known_fig3_sequence(self):
        """The paper's Fig. 3 walk-through, step by step: read fan-out
        (A), write-after-read (B), rejoin on the last writer (C)."""
        n_arrays = 2
        steps = [
            ("add", [(0, AccessKind.READ_WRITE)]),      # K1(x)
            ("add", [(0, AccessKind.READ)]),            # K2(const x)
            ("add", [(0, AccessKind.READ)]),            # K3(const x)
            ("add", [(0, AccessKind.READ_WRITE), (1, AccessKind.READ)]),
            ("sync", [0, 1, 2]),
            ("add", [(1, AccessKind.READ_WRITE)]),
        ]
        assert run_program(ComputationDAG, True, n_arrays, steps) == \
            run_program(ReferenceDAG, False, n_arrays, steps)
