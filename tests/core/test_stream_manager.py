"""Tests for stream-assignment policies (section IV-C)."""


from repro.core.element import ComputationalElement
from repro.core.policies import NewStreamPolicy, ParentStreamPolicy
from repro.core.streams import StreamManager
from repro.gpusim import Device, GTX1660_SUPER, SimEngine
from repro.gpusim.ops import KernelOp, KernelResourceRequest
from repro.memory import AccessKind


def make_engine():
    return SimEngine(Device(GTX1660_SUPER))


def element(label="e", arrays=()):
    return ComputationalElement(
        [(a, AccessKind.READ_WRITE) for a in arrays], label=label
    )


def busy_op():
    return KernelOp(
        label="busy",
        resources=KernelResourceRequest(
            flops=1e12, fp64=False, dram_bytes=0, l2_bytes=0,
            instructions=0, threads_total=1 << 20,
        ),
    )


class TestFreeStreamRetrieval:
    def test_creates_first_stream(self):
        mgr = StreamManager(make_engine())
        s = mgr.retrieve_free_stream()
        assert s is not None
        assert mgr.created_count == 1

    def test_fifo_reuses_free_stream(self):
        mgr = StreamManager(make_engine())
        s1 = mgr.retrieve_free_stream()
        s2 = mgr.retrieve_free_stream()
        assert s1 is s2  # still free: reused, not created
        assert mgr.created_count == 1
        assert mgr.reused_count == 1

    def test_fifo_creates_when_all_busy(self):
        engine = make_engine()
        mgr = StreamManager(engine)
        s1 = mgr.retrieve_free_stream()
        engine.submit(s1, busy_op())
        s2 = mgr.retrieve_free_stream()
        assert s2 is not s1
        assert mgr.created_count == 2

    def test_fifo_prefers_oldest_free(self):
        engine = make_engine()
        mgr = StreamManager(engine)
        s1 = mgr.retrieve_free_stream()
        engine.submit(s1, busy_op())
        s2 = mgr.retrieve_free_stream()
        engine.sync_all()  # everything completes; s1 free again
        s3 = mgr.retrieve_free_stream()
        assert s3 is s1  # oldest first

    def test_always_new_policy(self):
        mgr = StreamManager(
            make_engine(), new_stream=NewStreamPolicy.ALWAYS_NEW
        )
        s1 = mgr.retrieve_free_stream()
        s2 = mgr.retrieve_free_stream()
        assert s1 is not s2
        assert mgr.created_count == 2


class TestParentStreamPolicy:
    def test_no_parents_gets_free_stream(self):
        mgr = StreamManager(make_engine())
        e = element()
        s = mgr.assign(e, [])
        assert e.stream is s

    def test_first_child_inherits_parent_stream(self):
        engine = make_engine()
        mgr = StreamManager(engine)
        parent = element("p")
        mgr.assign(parent, [])
        engine.submit(parent.stream, busy_op())
        child = element("c")
        parent.children_count = 1  # DAG increments before assignment
        s = mgr.assign(child, [parent])
        assert s is parent.stream

    def test_second_child_gets_other_stream(self):
        engine = make_engine()
        mgr = StreamManager(engine)
        parent = element("p")
        mgr.assign(parent, [])
        engine.submit(parent.stream, busy_op())
        parent.children_count = 2  # second child being assigned
        child2 = element("c2")
        s = mgr.assign(child2, [parent])
        assert s is not parent.stream

    def test_same_as_parent_policy(self):
        engine = make_engine()
        mgr = StreamManager(
            engine, parent_stream=ParentStreamPolicy.SAME_AS_PARENT
        )
        parent = element("p")
        mgr.assign(parent, [])
        parent.children_count = 5
        child = element("c")
        s = mgr.assign(child, [parent])
        assert s is parent.stream

    def test_multi_parent_prefers_first_childless(self):
        engine = make_engine()
        mgr = StreamManager(engine)
        p1, p2 = element("p1"), element("p2")
        mgr.assign(p1, [])
        engine.submit(p1.stream, busy_op())
        mgr.assign(p2, [])
        engine.submit(p2.stream, busy_op())
        assert p1.stream is not p2.stream
        # p1 already gave its stream away; p2 has not.
        p1.children_count = 2
        p2.children_count = 1
        child = element("c")
        s = mgr.assign(child, [p1, p2])
        assert s is p2.stream

    def test_introspection(self):
        engine = make_engine()
        mgr = StreamManager(engine)
        s = mgr.retrieve_free_stream()
        engine.submit(s, busy_op())
        assert mgr.active_stream_count == 1
        assert len(mgr.streams) == 1
