"""Dependency-set inference tests, including the exact scenarios of the
paper's Fig. 3 (cases A, B, C) and Fig. 2 (the ML pipeline DAG)."""

import pytest

from repro.core.dag import ComputationDAG
from repro.core.element import ComputationalElement
from repro.memory import AccessKind, DeviceArray


def elem(dag, label, reads=(), writes=(), read_writes=()):
    accesses = (
        [(a, AccessKind.READ) for a in reads]
        + [(a, AccessKind.WRITE) for a in writes]
        + [(a, AccessKind.READ_WRITE) for a in read_writes]
    )
    e = ComputationalElement(accesses, label=label)
    parents = dag.add(e)
    return e, parents


@pytest.fixture
def dag():
    return ComputationDAG()


@pytest.fixture
def arrays():
    return {n: DeviceArray(8, name=n) for n in "XYZWR"}


class TestFigure3:
    """Fig. 3: read-only dependency rules with kernels K1, K2, K3."""

    def test_case_a_reader_depends_on_writer(self, dag, arrays):
        X, Y, Z = arrays["X"], arrays["Y"], arrays["Z"]
        k1, _ = elem(dag, "K1", read_writes=[X, Y])
        k2, p2 = elem(dag, "K2", reads=[X], read_writes=[Z])
        assert p2 == [k1]
        # The writer keeps X in its dependency set (not updated).
        assert k1.writes_in_set(X)
        assert k2.reads_only_in_set(X)

    def test_case_b_writer_depends_on_reader_not_both(self, dag, arrays):
        X, Y, Z, W = arrays["X"], arrays["Y"], arrays["Z"], arrays["W"]
        k1, _ = elem(dag, "K1", read_writes=[X, Y])
        k2, _ = elem(dag, "K2", reads=[X], read_writes=[Z])
        k3, p3 = elem(dag, "K3", read_writes=[X, W])
        # WAR anti-dependency on the reader K2 only — "it will not,
        # however, depend on both kernels".
        assert p3 == [k2]
        # X leaves every earlier dependency set.
        assert not k1.writes_in_set(X)
        assert k2.uses(X) is None

    def test_case_c_second_reader_depends_on_writer_only(self, dag, arrays):
        X, Y, Z, W = arrays["X"], arrays["Y"], arrays["Z"], arrays["W"]
        k1, _ = elem(dag, "K1", read_writes=[X, Y])
        k2, _ = elem(dag, "K2", reads=[X], read_writes=[Z])
        k3, p3 = elem(dag, "K3", reads=[X], read_writes=[W])
        # Read-only K3 depends on the writer K1, not the reader K2.
        assert p3 == [k1]
        # K1's dependency set is not updated by read-only children.
        assert k1.writes_in_set(X)

    def test_case_c_follow_up_writer_depends_on_both_readers(
        self, dag, arrays
    ):
        # Paper: "if a new kernel requires X as read-only argument, it
        # will depend on K1, otherwise it will depend on both K2 and K3,
        # and all dependency sets will be updated."
        X, Y, Z, W, R = (arrays[n] for n in "XYZWR")
        k1, _ = elem(dag, "K1", read_writes=[X, Y])
        k2, _ = elem(dag, "K2", reads=[X], read_writes=[Z])
        k3, _ = elem(dag, "K3", reads=[X], read_writes=[W])
        k4, p4 = elem(dag, "K4", read_writes=[X, R])
        assert set(p4) == {k2, k3}
        for k in (k1, k2, k3):
            assert k.uses(X) is None

    def test_case_c_follow_up_reader_depends_on_k1(self, dag, arrays):
        X, Y, Z, W, R = (arrays[n] for n in "XYZWR")
        k1, _ = elem(dag, "K1", read_writes=[X, Y])
        k2, _ = elem(dag, "K2", reads=[X], read_writes=[Z])
        k3, _ = elem(dag, "K3", reads=[X], read_writes=[W])
        k4, p4 = elem(dag, "K4", reads=[X], read_writes=[R])
        assert p4 == [k1]


class TestBasicRules:
    def test_no_dependency_between_disjoint_kernels(self, dag, arrays):
        _, p1 = elem(dag, "K1", read_writes=[arrays["X"]])
        _, p2 = elem(dag, "K2", read_writes=[arrays["Y"]])
        assert p1 == [] and p2 == []

    def test_concurrent_readers_share_no_dependency(self, dag, arrays):
        X = arrays["X"]
        k1, _ = elem(dag, "K1", read_writes=[X])
        k2, p2 = elem(dag, "K2", reads=[X], read_writes=[arrays["Y"]])
        k3, p3 = elem(dag, "K3", reads=[X], read_writes=[arrays["Z"]])
        # Both readers depend on the writer, never on each other:
        # "if two kernels use the same read-only input array, they will
        # be executed concurrently on different streams."
        assert p2 == [k1] and p3 == [k1]

    def test_raw_chain(self, dag, arrays):
        X = arrays["X"]
        k1, _ = elem(dag, "K1", writes=[X])
        k2, p2 = elem(dag, "K2", read_writes=[X])
        k3, p3 = elem(dag, "K3", read_writes=[X])
        assert p2 == [k1] and p3 == [k2]

    def test_waw_dependency(self, dag, arrays):
        X = arrays["X"]
        k1, _ = elem(dag, "K1", writes=[X])
        k2, p2 = elem(dag, "K2", writes=[X])
        assert p2 == [k1]

    def test_duplicate_parent_merged(self, dag, arrays):
        X, Y = arrays["X"], arrays["Y"]
        k1, _ = elem(dag, "K1", read_writes=[X, Y])
        k2, p2 = elem(dag, "K2", read_writes=[X, Y])
        assert p2 == [k1]  # one edge despite two conflicting arrays
        assert k1.children_count == 1

    def test_same_array_read_and_write_in_one_kernel(self, dag, arrays):
        X = arrays["X"]
        e = ComputationalElement(
            [(X, AccessKind.READ), (X, AccessKind.WRITE)], label="K"
        )
        dag.add(e)
        # Merged to read-write for dependency purposes.
        assert e.uses(X) is AccessKind.READ_WRITE

    def test_empty_dependency_set_leaves_frontier(self, dag, arrays):
        X = arrays["X"]
        k1, _ = elem(dag, "K1", writes=[X])
        elem(dag, "K2", writes=[X])
        assert k1 not in dag.frontier
        assert k1.dependency_set_empty

    def test_inactive_elements_ignored(self, dag, arrays):
        X = arrays["X"]
        k1, _ = elem(dag, "K1", writes=[X])
        dag.deactivate(k1)
        _, p2 = elem(dag, "K2", reads=[X], writes=[arrays["Y"]])
        assert p2 == []


class TestFigure2MLPipeline:
    """Fig. 2: FC -> (NB | NO -> RI) -> EN with read-only branches."""

    def test_structure(self, dag):
        X = DeviceArray(8, name="X")
        Y = DeviceArray(8, name="Y")
        Z = DeviceArray(8, name="Z")
        R1 = DeviceArray(8, name="R1")
        R2 = DeviceArray(8, name="R2")
        R = DeviceArray(8, name="R")

        fc, p_fc = elem(dag, "FC", reads=[X], writes=[Y])
        nb, p_nb = elem(dag, "NB", reads=[Y], read_writes=[R1])
        no, p_no = elem(dag, "NO", reads=[Y], writes=[Z])
        ri, p_ri = elem(dag, "RI", reads=[Z], read_writes=[R2])
        en, p_en = elem(dag, "EN", reads=[R1, R2], writes=[R])

        assert p_fc == []
        assert p_nb == [fc]
        assert p_no == [fc]          # independent of NB: parallel branches
        assert p_ri == [no]
        assert set(p_en) == {nb, ri}

    def test_edges_labelled_with_arrays(self, dag):
        X = DeviceArray(8, name="X")
        Y = DeviceArray(8, name="Y")
        elem(dag, "FC", reads=[X], writes=[Y])
        elem(dag, "NB", reads=[Y], writes=[DeviceArray(8, name="R1")])
        assert dag.edges[0].array.name == "Y"


class TestDagIntrospection:
    def test_counts(self, dag, arrays):
        X = arrays["X"]
        elem(dag, "K1", writes=[X])
        elem(dag, "K2", reads=[X], writes=[arrays["Y"]])
        assert dag.num_vertices == 2
        assert dag.num_edges == 1

    def test_parents_children_queries(self, dag, arrays):
        X = arrays["X"]
        k1, _ = elem(dag, "K1", writes=[X])
        k2, _ = elem(dag, "K2", reads=[X], writes=[arrays["Y"]])
        assert dag.parents_of(k2) == [k1]
        assert dag.children_of(k1) == [k2]

    def test_networkx_export(self, dag, arrays):
        X = arrays["X"]
        elem(dag, "K1", writes=[X])
        elem(dag, "K2", reads=[X], writes=[arrays["Y"]])
        g = dag.to_networkx()
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 1
        assert dag.is_acyclic()
