"""Tests for the data-race detector used to validate schedules."""

import pytest

from repro.core.race import check_no_races, find_races
from repro.errors import DataRaceError
from repro.gpusim.timeline import IntervalKind, Timeline, TimelineRecord


def krec(label, start, end, reads=(), writes=(), stream=0):
    names = {x: f"a{x}" for x in (*reads, *writes)}
    return TimelineRecord(
        op_id=0,
        label=label,
        kind=IntervalKind.KERNEL,
        stream_id=stream,
        start=start,
        end=end,
        meta={
            "reads": frozenset(reads),
            "writes": frozenset(writes),
            "array_names": names,
        },
    )


def timeline(*records):
    tl = Timeline()
    for r in records:
        tl.add(r)
    return tl


class TestFindRaces:
    def test_empty_timeline(self):
        assert find_races(timeline()) == []

    def test_disjoint_in_time_no_race(self):
        tl = timeline(
            krec("a", 0, 1, writes=[1]), krec("b", 1, 2, reads=[1])
        )
        assert find_races(tl) == []

    def test_write_read_overlap_is_race(self):
        tl = timeline(
            krec("a", 0, 2, writes=[1]), krec("b", 1, 3, reads=[1])
        )
        races = find_races(tl)
        assert len(races) == 1
        assert races[0].array_names == ("a1",)

    def test_write_write_overlap_is_race(self):
        tl = timeline(
            krec("a", 0, 2, writes=[1]), krec("b", 1, 3, writes=[1])
        )
        assert len(find_races(tl)) == 1

    def test_read_read_overlap_is_fine(self):
        tl = timeline(
            krec("a", 0, 2, reads=[1]), krec("b", 1, 3, reads=[1])
        )
        assert find_races(tl) == []

    def test_overlap_on_different_arrays_is_fine(self):
        tl = timeline(
            krec("a", 0, 2, writes=[1]), krec("b", 1, 3, writes=[2])
        )
        assert find_races(tl) == []

    def test_unannotated_kernels_skipped(self):
        tl = timeline(
            TimelineRecord(
                op_id=0, label="x", kind=IntervalKind.KERNEL,
                stream_id=0, start=0, end=2,
            ),
            krec("a", 0, 2, writes=[1]),
        )
        assert find_races(tl) == []

    def test_multiple_races_reported(self):
        tl = timeline(
            krec("a", 0, 10, writes=[1]),
            krec("b", 1, 3, reads=[1]),
            krec("c", 4, 6, writes=[1]),
        )
        assert len(find_races(tl)) >= 2


class TestCheckNoRaces:
    def test_raises_with_description(self):
        tl = timeline(
            krec("writer", 0, 2, writes=[7]),
            krec("reader", 1, 3, reads=[7]),
        )
        with pytest.raises(DataRaceError) as exc:
            check_no_races(tl)
        assert "writer" in str(exc.value)
        assert "a7" in str(exc.value)

    def test_passes_clean_timeline(self):
        tl = timeline(
            krec("a", 0, 1, writes=[1]), krec("b", 2, 3, reads=[1])
        )
        check_no_races(tl)
