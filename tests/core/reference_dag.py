"""Frozen copy of the pre-PR-3 frontier-scan dependency inference.

The indexed :class:`repro.core.dag.ComputationDAG` must reproduce these
Fig. 3 semantics exactly (WAR/WAW set-removal, multi-reader fan-out,
frontier membership); the equivalence property tests run both over the
same random access sequences.  Do not optimise this file — the scans
*are* the specification.
"""


from __future__ import annotations

from dataclasses import dataclass

from repro.core.element import ComputationalElement
from repro.memory.array import DeviceArray


@dataclass(frozen=True)
class DependencyEdge:
    """One inferred data dependency, labelled with the array that caused
    it (the edge labels of Fig. 2)."""

    parent: ComputationalElement
    child: ComputationalElement
    array: DeviceArray


class ReferenceDAG:
    """Incrementally-built computation DAG.

    ``frontier`` holds the *active* elements — those that can still
    introduce dependencies.  ``vertices``/``edges`` accumulate the full
    history for introspection (Fig. 2-style rendering, tests, metrics);
    the scheduler itself only ever consults the frontier.
    """

    def __init__(self) -> None:
        self.frontier: list[ComputationalElement] = []
        self.vertices: list[ComputationalElement] = []
        self.edges: list[DependencyEdge] = []

    # -- construction ---------------------------------------------------------

    def add(
        self, element: ComputationalElement
    ) -> list[ComputationalElement]:
        """Insert ``element``, inferring its dependencies.

        Returns the (deduplicated, insertion-ordered) parent elements.
        Dependency-set updates follow Fig. 3 exactly; see the module
        docstring for the rules.
        """
        parents: dict[int, ComputationalElement] = {}
        edge_arrays: dict[int, DeviceArray] = {}

        for array, kind in element.accesses:
            if kind.writes:
                found = self._providers_for_write(array)
            else:
                found = self._providers_for_read(array)
            for provider in found:
                if provider.element_id not in parents:
                    parents[provider.element_id] = provider
                    edge_arrays[provider.element_id] = array

        for parent in parents.values():
            parent.children_count += 1
            self.edges.append(
                DependencyEdge(
                    parent=parent,
                    child=element,
                    array=edge_arrays[parent.element_id],
                )
            )

        self.vertices.append(element)
        self.frontier.append(element)
        self._prune_frontier()
        return list(parents.values())

    def _providers_for_read(
        self, array: DeviceArray
    ) -> list[ComputationalElement]:
        """Read dependency: the active last writer(s) of ``array``.

        The writer keeps the argument in its dependency set, so multiple
        readers all depend on the writer directly and may overlap.
        """
        return [
            e
            for e in self.frontier
            if e.active and e.writes_in_set(array)
        ]

    def _providers_for_write(
        self, array: DeviceArray
    ) -> list[ComputationalElement]:
        """Write dependency: active readers if any (WAR), else the last
        writer (WAW).  Either way the argument leaves every previous
        holder's dependency set."""
        readers = [
            e
            for e in self.frontier
            if e.active and e.reads_only_in_set(array)
        ]
        writers = [
            e
            for e in self.frontier
            if e.active and e.writes_in_set(array)
        ]
        providers = readers if readers else writers
        for holder in (*readers, *writers):
            holder.remove_from_set(array)
        return providers

    def _prune_frontier(self) -> None:
        """Drop inactive elements and those with empty dependency sets."""
        self.frontier = [
            e
            for e in self.frontier
            if e.active and not e.dependency_set_empty
        ]

    # -- deactivation -----------------------------------------------------------

    def deactivate(self, element: ComputationalElement) -> None:
        """Remove an element from the frontier (the CPU consumed its
        result, section IV-B)."""
        element.active = False
        self._prune_frontier()

    def deactivate_completed(self) -> None:
        """Sweep the frontier of elements whose finish event completed.

        Called after host synchronizations: any element the host has
        (transitively) waited on is complete and no longer needs to be
        considered for dependencies.  Keeping completed elements around
        would stay *correct* (waiting on a completed event is a no-op)
        but wastes scheduling time and holds streams hostage.
        """
        for e in self.frontier:
            if e.finish_event is not None and e.finish_event.complete:
                e.active = False
        self._prune_frontier()

    # -- introspection ------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def parents_of(
        self, element: ComputationalElement
    ) -> list[ComputationalElement]:
        return [e.parent for e in self.edges if e.child is element]

    def children_of(
        self, element: ComputationalElement
    ) -> list[ComputationalElement]:
        return [e.child for e in self.edges if e.parent is element]

    def to_networkx(self):
        """Export the accumulated DAG as a :class:`networkx.DiGraph`.

        Vertex attributes: ``label``; edge attributes: ``array`` (name of
        the array causing the dependency).  Used by examples and tests;
        the scheduler never needs it.
        """
        import networkx as nx

        g = nx.DiGraph()
        for v in self.vertices:
            g.add_node(v.element_id, label=v.label)
        for e in self.edges:
            g.add_edge(
                e.parent.element_id,
                e.child.element_id,
                array=e.array.name,
            )
        return g

    def is_acyclic(self) -> bool:
        """The construction can only add edges from old to new vertices,
        so this always holds; exposed for property tests."""
        import networkx as nx

        return nx.is_directed_acyclic_graph(self.to_networkx())
