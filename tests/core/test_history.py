"""Tests for kernel-execution history and the block-size heuristic
(sections IV-A and VI)."""

import pytest

from repro import GrCUDARuntime, SchedulerConfig, ExecutionPolicy
from repro.core.history import (
    KernelExecutionRecord,
    KernelHistory,
    _size_bucket,
)
from repro.kernels import LinearCostModel


def rec(name="k", block=256, data=1e6, duration=1e-3, blocks=64):
    return KernelExecutionRecord(
        kernel_name=name,
        threads_per_block=block,
        blocks=blocks,
        data_bytes=data,
        duration=duration,
        stream_id=1,
        end_time=duration,
    )


class TestHistoryBookkeeping:
    def test_empty(self):
        h = KernelHistory()
        assert h.kernels() == []
        assert h.execution_count("k") == 0

    def test_record_and_query(self):
        h = KernelHistory()
        h.record(rec(duration=2e-3))
        h.record(rec(duration=4e-3))
        assert h.kernels() == ["k"]
        assert h.execution_count("k") == 2
        assert h.mean_duration("k") == pytest.approx(3e-3)

    def test_mean_by_block_size(self):
        h = KernelHistory()
        h.record(rec(block=32, duration=8e-3))
        h.record(rec(block=256, duration=1e-3))
        assert h.mean_duration("k", 32) == pytest.approx(8e-3)
        assert h.mean_duration("k", 256) == pytest.approx(1e-3)

    def test_missing_kernel_raises(self):
        with pytest.raises(KeyError):
            KernelHistory().mean_duration("nope")

    def test_record_cap(self):
        h = KernelHistory(max_records_per_kernel=3)
        for _ in range(10):
            h.record(rec())
        assert h.execution_count("k") == 3

    def test_summary(self):
        h = KernelHistory()
        h.record(rec(duration=1e-3))
        h.record(rec(duration=3e-3))
        s = h.summary()["k"]
        assert s["executions"] == 2
        assert s["mean_ms"] == pytest.approx(2.0)
        assert s["best_ms"] == pytest.approx(1.0)


class TestSizeBuckets:
    def test_monotonic(self):
        assert _size_bucket(1024) < _size_bucket(1 << 20)

    def test_same_bucket_within_2x(self):
        assert _size_bucket(1000) in (
            _size_bucket(1500),
            _size_bucket(1500) - 1,
        )

    def test_zero_safe(self):
        assert _size_bucket(0) == 0


class TestRecommendation:
    def test_no_evidence_returns_none(self):
        h = KernelHistory()
        assert h.recommend_block_size("k", 1e6) is None

    def test_picks_fastest_block(self):
        h = KernelHistory()
        for _ in range(3):
            h.record(rec(block=32, duration=8e-3))
            h.record(rec(block=256, duration=1e-3))
            h.record(rec(block=1024, duration=2e-3))
        assert h.recommend_block_size("k", 1e6) == 256

    def test_respects_data_size_bucket(self):
        h = KernelHistory()
        # Small inputs favour small blocks; large inputs large blocks.
        h.record(rec(block=32, data=1e3, duration=1e-6))
        h.record(rec(block=1024, data=1e3, duration=5e-6))
        h.record(rec(block=32, data=1e9, duration=5e-1))
        h.record(rec(block=1024, data=1e9, duration=1e-1))
        assert h.recommend_block_size("k", 1e3) == 32
        assert h.recommend_block_size("k", 1e9) == 1024

    def test_other_kernels_ignored(self):
        h = KernelHistory()
        h.record(rec(name="a", block=32))
        assert h.recommend_block_size("b", 1e6) is None


class TestRuntimeIntegration:
    def _run(self, block_size, policy=ExecutionPolicy.PARALLEL):
        rt = GrCUDARuntime(
            gpu="GTX 1660 Super",
            config=SchedulerConfig(execution=policy),
        )
        n = 1 << 20
        k = rt.build_kernel(
            lambda x, m: None,
            "probe",
            "ptr, sint32",
            LinearCostModel(flops_per_item=200.0, instructions_per_item=50.0),
        )
        x = rt.array(n, materialize=False)
        for _ in range(3):
            k(512, block_size)(x, n)
        rt.sync()
        return rt

    def test_history_populated_by_scheduler(self):
        rt = self._run(256)
        assert rt.history.execution_count("probe") == 3
        assert rt.history.mean_duration("probe") > 0

    def test_history_populated_by_serial_scheduler(self):
        rt = self._run(256, policy=ExecutionPolicy.SERIAL)
        assert rt.history.execution_count("probe") == 3

    def test_end_to_end_recommendation(self):
        # Compute-bound kernel: 32-thread blocks under-occupy the GPU
        # and run slower; the heuristic should learn to prefer 1024.
        rt = GrCUDARuntime(gpu="GTX 1660 Super")
        n = 1 << 20
        k = rt.build_kernel(
            lambda x, m: None,
            "probe",
            "ptr, sint32",
            LinearCostModel(flops_per_item=200.0, instructions_per_item=50.0),
        )
        x = rt.array(n, materialize=False)
        for block in (32, 128, 1024):
            k(512, block)(x, n)
            rt.sync()
        best = rt.history.recommend_block_size("probe", x.nbytes)
        assert best == 1024
