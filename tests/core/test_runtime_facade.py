"""Tests for the GrCUDARuntime facade API."""

import numpy as np
import pytest

from repro import (
    AccessKind,
    ExecutionPolicy,
    GrCUDARuntime,
    SchedulerConfig,
    TESLA_P100,
)
from repro.kernels import LinearCostModel

COST = LinearCostModel(flops_per_item=100.0, dram_bytes_per_item=8.0)


class TestConstruction:
    def test_gpu_by_string(self):
        rt = GrCUDARuntime(gpu="p100")
        assert rt.spec is TESLA_P100

    def test_gpu_by_spec(self):
        rt = GrCUDARuntime(gpu=TESLA_P100)
        assert rt.spec is TESLA_P100

    def test_default_is_parallel(self):
        rt = GrCUDARuntime()
        assert rt.config.execution is ExecutionPolicy.PARALLEL

    def test_serial_config(self):
        rt = GrCUDARuntime(
            config=SchedulerConfig(execution=ExecutionPolicy.SERIAL)
        )
        from repro.core.context import SerialExecutionContext

        assert isinstance(rt.context, SerialExecutionContext)

    def test_repr(self):
        assert "GTX 1660 Super" in repr(GrCUDARuntime())


class TestArrays:
    def test_array_attached_and_accounted(self):
        rt = GrCUDARuntime()
        a = rt.array(1000, name="a")
        assert rt.device.allocated_bytes == a.nbytes
        a[0] = 1.0  # hook active: no error, coherence handled

    def test_free_arrays(self):
        rt = GrCUDARuntime()
        rt.array(1000)
        rt.array(2000, dtype=np.float64)
        rt.free_arrays()
        assert rt.device.allocated_bytes == 0

    def test_virtual_array(self):
        rt = GrCUDARuntime()
        a = rt.array(10**9, materialize=False)
        assert a.nbytes == 4 * 10**9 > 0
        assert not a.materialized


class TestExecution:
    def test_elapsed_and_clock(self):
        rt = GrCUDARuntime()
        k = rt.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        x = rt.array(1 << 20)
        k(512, 256)(x, 1 << 20)
        rt.sync()
        assert rt.elapsed() > 0
        assert rt.clock >= rt.elapsed()

    def test_reset_measurement(self):
        rt = GrCUDARuntime()
        k = rt.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        x = rt.array(1 << 20)
        k(512, 256)(x, 1 << 20)
        rt.reset_measurement()
        assert rt.elapsed() == 0.0
        k(512, 256)(x, 1 << 20)
        rt.sync()
        assert rt.elapsed() > 0

    def test_library_call_serial_context(self):
        rt = GrCUDARuntime(
            config=SchedulerConfig(execution=ExecutionPolicy.SERIAL)
        )
        x = rt.array(100)
        calls = []
        rt.library_call(
            lambda: calls.append(1),
            [(x, AccessKind.READ_WRITE)],
            cost_seconds=1e-3,
        )
        assert calls == [1]
        assert rt.clock >= 1e-3

    def test_dag_exposed(self):
        rt = GrCUDARuntime()
        k = rt.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        x = rt.array(1 << 16)
        k(64, 256)(x, 1 << 16)
        rt.sync()
        assert rt.dag.num_vertices == 1

    def test_history_exposed(self):
        rt = GrCUDARuntime()
        k = rt.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        x = rt.array(1 << 16)
        k(64, 256)(x, 1 << 16)
        rt.sync()
        assert rt.history.execution_count("k") == 1


class TestRegistryIntegration:
    def test_runtime_with_custom_registry(self):
        from repro.kernels.registry import KernelRegistry

        reg = KernelRegistry()
        reg.register("scale2", lambda x, n: None, COST)
        rt = GrCUDARuntime(registry=reg)
        k = rt.build_kernel("scale2", "scale2", "ptr, sint32")
        x = rt.array(1 << 16)
        k(64, 256)(x, 1 << 16)
        rt.sync()
        assert rt.elapsed() > 0


class TestReentrantContextReuse:
    """renew_context: one long-lived runtime, many isolated contexts
    (the substrate of the repro.serve fleet)."""

    def _run_square(self, rt, kernel, n=1024):
        x = rt.array(n, name="x")
        x.copy_from_host(np.full(n, 3.0, dtype=np.float32))
        kernel(8, 128)(x, n)
        return x

    def test_fresh_dag_and_history_per_context(self):
        rt = GrCUDARuntime()
        k = rt.build_kernel(
            lambda x, n: np.square(x[:n], out=x[:n]),
            "square", "ptr, sint32", COST,
        )
        x = self._run_square(rt, k)
        assert x[0] == pytest.approx(9.0)
        assert rt.dag.num_vertices > 0
        assert rt.history.execution_count("square") == 1
        first = rt.context

        rt.free_arrays()
        ctx = rt.renew_context(op_tags={"tenant": "t1"})
        assert ctx is rt.context and ctx is not first
        assert rt.dag.num_vertices == 0
        assert rt.history.execution_count("square") == 0
        assert rt.context_generation == 1

        # The same kernel object keeps launching into the new context.
        y = self._run_square(rt, k)
        assert y[0] == pytest.approx(9.0)
        assert rt.history.execution_count("square") == 1
        tagged = [
            r for r in rt.timeline.kernels()
            if r.meta.get("tenant") == "t1"
        ]
        assert len(tagged) == 1

    def test_renewal_reclaims_engine_streams(self):
        rt = GrCUDARuntime()
        k = rt.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        for _ in range(6):
            self._run_square(rt, k)
            rt.free_arrays()
            rt.renew_context()
        # One default stream + at most the live context's streams: dead
        # contexts do not leak streams into the engine's scheduling scan.
        assert len(rt.engine.streams) <= 3

    def test_undrained_renewal_keeps_work_in_flight(self):
        rt = GrCUDARuntime()
        k = rt.build_kernel(lambda x, n: None, "k", "ptr, sint32", COST)
        x = rt.array(1024, name="x")
        x.copy_from_host(np.zeros(1024, dtype=np.float32))
        k(8, 128)(x, 1024)
        old = rt.context
        rt.renew_context(drain=False)
        assert rt.context is not old
        assert not rt.engine.idle  # the old context's kernel still queued
        rt.engine.sync_all()

    def test_surviving_arrays_reattach_on_drained_renewal(self):
        rt = GrCUDARuntime()
        x = rt.array(16, name="x")
        rt.renew_context()
        assert x._on_cpu_access is not None
        x[0]  # routed through the fresh context without error
