"""The unified ``repro.Session`` entry point: canonical surface,
configuration validation, and the legacy deprecation shims."""

import numpy as np
import pytest

from repro import (
    AdmissionPolicy,
    ConfigError,
    DevicePlacementPolicy,
    ExecutionPolicy,
    GrCUDARuntime,
    SchedulerConfig,
    Session,
    SessionMetrics,
)
from repro.core.context import (
    ParallelExecutionContext,
    SerialExecutionContext,
)
from repro.kernels import LinearCostModel
from repro.memory.array import DeviceArray
from repro.memory.coherence import MovementPolicy
from repro.multigpu import (
    MultiGpuArray,
    MultiGpuExecutionContext,
    MultiGpuScheduler,
)

COST = LinearCostModel(
    flops_per_item=100.0,
    dram_bytes_per_item=8.0,
    instructions_per_item=20.0,
)


def run_square(sess, n=1 << 16):
    def square(x, m):
        np.square(x[:m], out=x[:m])

    k = sess.build_kernel(square, "square", "ptr, sint32", COST)
    x = sess.array(n, name="x")
    x.copy_from_host(np.full(n, 3.0, dtype=np.float32))
    k(64, 256)(x, n)
    return x


class TestCanonicalSurface:
    def test_single_gpu_default(self):
        sess = Session()
        assert sess.gpus == 1
        assert isinstance(sess.context, ParallelExecutionContext)
        x = run_square(sess)
        assert isinstance(x, DeviceArray)
        assert x[0] == 9.0
        sess.sync()
        assert sess.timeline().makespan > 0

    def test_serial_execution_config(self):
        sess = Session(
            config=SchedulerConfig(execution=ExecutionPolicy.SERIAL)
        )
        assert isinstance(sess.context, SerialExecutionContext)
        assert run_square(sess)[0] == 9.0

    def test_multi_gpu_dispatch(self):
        sess = Session(gpus=2)
        assert isinstance(sess.context, MultiGpuExecutionContext)
        x = run_square(sess)
        assert isinstance(x, MultiGpuArray)
        assert x[0] == 9.0
        assert len(sess.devices) == 2

    def test_heterogeneous_gpu_list_infers_count(self):
        sess = Session(gpu=["GTX 1660 Super", "Tesla P100"])
        assert sess.gpus == 2
        assert sess.specs[0].name != sess.specs[1].name

    def test_gpu_count_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            Session(gpus=3, gpu=["1660", "1660"])

    def test_same_program_single_and_multi(self):
        """The tentpole promise: identical host code, any device count."""
        values = {}
        for gpus in (1, 2, 4):
            sess = Session(gpus=gpus)
            x = run_square(sess)
            values[gpus] = x.to_numpy()
        assert np.array_equal(values[1], values[2])
        assert np.array_equal(values[1], values[4])

    def test_timeline_both_spellings(self):
        """``sess.timeline()`` (canonical) and ``rt.timeline`` (legacy
        property) resolve to the same object on Session and the shim —
        Session-generic code never branches on which class it holds."""
        sess = Session()
        assert sess.timeline() is sess.timeline
        with pytest.warns(DeprecationWarning):
            rt = GrCUDARuntime()
        assert rt.timeline() is rt.timeline
        assert rt.timeline.makespan == 0.0

    def test_virtual_array_slicing_parity(self):
        """The shared host surface guarantees identical indexing
        behaviour at any device count, including virtual arrays."""
        for gpus in (1, 2):
            sess = Session(gpus=gpus)
            x = sess.array(1024, name="x", materialize=False)
            assert x[0:10].shape == (10,)
            assert x[5] == 0.0
            assert len(x) == 1024

    def test_metrics(self):
        sess = Session(gpus=2)
        run_square(sess)
        sess.sync()
        m = sess.metrics()
        assert isinstance(m, SessionMetrics)
        assert m.gpus == 2
        assert m.kernels_launched == 1
        assert sum(m.device_kernel_counts) == 1
        assert m.makespan > 0
        assert m.host_clock >= m.makespan

    def test_library_call_single_gpu(self):
        from repro.memory.array import AccessKind

        sess = Session()
        x = sess.array(128, name="x")
        sess.library_call(
            lambda: None, [(x, AccessKind.WRITE)],
            label="lib", cost_seconds=1e-5,
        )
        sess.sync()
        assert any(
            r.label == "lib" for r in sess.timeline().kernels()
        )

    def test_library_call_multi_gpu(self):
        from repro.memory.array import AccessKind

        sess = Session(gpus=2)
        x = sess.array(128, name="x")
        sess.library_call(
            lambda: None, [(x, AccessKind.WRITE)],
            label="lib", cost_seconds=1e-5,
        )
        sess.sync()
        assert any(
            r.label == "lib" for r in sess.timeline().kernels()
        )


class TestConfigValidation:
    def test_negative_gpus_rejected(self):
        with pytest.raises(ConfigError):
            Session(gpus=-1)

    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigError):
            Session(gpus=0)

    def test_non_integer_gpus_rejected(self):
        with pytest.raises(ConfigError):
            Session(gpus=2.5)

    def test_admission_on_compute_session_rejected(self):
        """Serving knobs on a non-serving session are configuration
        errors, not silently ignored settings."""
        with pytest.raises(ConfigError):
            Session(config=SchedulerConfig(admission=AdmissionPolicy.FIFO))

    def test_admission_allowed_on_serving_session(self):
        sess = Session(
            config=SchedulerConfig(admission=AdmissionPolicy.PRIORITY),
            serving=True,
        )
        assert sess.config.admission is AdmissionPolicy.PRIORITY

    def test_serial_multi_gpu_rejected(self):
        with pytest.raises(ConfigError):
            Session(
                gpus=2,
                config=SchedulerConfig(execution=ExecutionPolicy.SERIAL),
            )

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigError):
            SchedulerConfig(scheduling_overhead_us=-1.0).validate()

    def test_placement_resolution(self):
        cfg = SchedulerConfig()
        assert (
            cfg.resolve_placement()
            is DevicePlacementPolicy.MIN_TRANSFER
        )
        assert (
            cfg.resolve_placement(serving=True)
            is DevicePlacementPolicy.LEAST_LOADED
        )
        explicit = SchedulerConfig(
            placement=DevicePlacementPolicy.ROUND_ROBIN
        )
        assert (
            explicit.resolve_placement(serving=True)
            is DevicePlacementPolicy.ROUND_ROBIN
        )


class TestDeprecationShims:
    def test_grcuda_runtime_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="GrCUDARuntime"):
            rt = GrCUDARuntime(gpu="GTX 1660 Super")
        x = run_square(rt)
        assert x[0] == 9.0
        # The legacy property spelling still works on the shim.
        assert rt.timeline.makespan > 0
        assert isinstance(rt, Session)

    def test_multigpu_scheduler_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="MultiGpuScheduler"):
            sched = MultiGpuScheduler(["1660", "1660"])
        k = sched.build_kernel(
            lambda x, n: np.multiply(x[:n], 2.0, out=x[:n]),
            "double", "ptr, sint32", COST,
        )
        a = sched.array(256, name="a")
        sched.write_input(a, np.ones(256, dtype=np.float32))
        k(4, 64)(a, 256)
        out = sched.read_result(a)
        assert np.all(out == 2.0)
        assert sched.elapsed > 0

    def test_session_does_not_warn(self, recwarn):
        Session(gpus=2)
        assert not [
            w for w in recwarn if w.category is DeprecationWarning
        ]
