"""End-to-end scheduler tests through the GrCUDARuntime facade.

These exercise the VEC micro-program of the paper's Fig. 4 under both
scheduling policies and check timing, overlap, coherence and results.
"""

import numpy as np
import pytest

from repro import (
    ExecutionPolicy,
    GrCUDARuntime,
    PrefetchPolicy,
    SchedulerConfig,
    GTX960,
    GTX1660_SUPER,
)
from repro.core.race import check_no_races
from repro.gpusim.ops import TransferKind
from repro.gpusim.timeline import IntervalKind
from repro.kernels import LinearCostModel


N = 1 << 20


def square_fn(x, n):
    np.square(x[:n], out=x[:n])


def sum_fn(x, y, z, n):
    z[0] = float(np.sum(x[:n] - y[:n]))


# ~4 MB arrays; compute-heavy enough that kernels outlast the (DMA-
# serialized) input transfers, so independent kernels visibly overlap.
COST = LinearCostModel(
    flops_per_item=3000.0,
    dram_bytes_per_item=8.0,
    instructions_per_item=4.0,
)


def make_runtime(policy=ExecutionPolicy.PARALLEL, gpu=GTX1660_SUPER, **kw):
    return GrCUDARuntime(
        gpu=gpu, config=SchedulerConfig(execution=policy, **kw)
    )


def run_vec(rt, iterations=1):
    """The paper's Fig. 4 program (VEC): two squares + a sum reduction."""
    square = rt.build_kernel(square_fn, "square", "ptr, sint32", COST)
    vsum = rt.build_kernel(
        sum_fn, "sum", "const ptr, const ptr, ptr, sint32", COST
    )
    X, Y, Z = rt.array(N, name="X"), rt.array(N, name="Y"), rt.array(1, name="Z")
    results = []
    for _ in range(iterations):
        X.copy_from_host(np.full(N, 2.0, dtype=np.float32))
        Y.copy_from_host(np.full(N, 3.0, dtype=np.float32))
        square(256, 256)(X, N)
        square(256, 256)(Y, N)
        vsum(256, 256)(X, Y, Z, N)
        results.append(Z[0])
    rt.sync()
    return results


class TestFunctionalCorrectness:
    @pytest.mark.parametrize(
        "policy", [ExecutionPolicy.SERIAL, ExecutionPolicy.PARALLEL]
    )
    def test_vec_result(self, policy):
        rt = make_runtime(policy)
        [res] = run_vec(rt)
        assert res == pytest.approx(N * (4.0 - 9.0))

    def test_policies_agree_over_iterations(self):
        serial = run_vec(make_runtime(ExecutionPolicy.SERIAL), iterations=3)
        parallel = run_vec(
            make_runtime(ExecutionPolicy.PARALLEL), iterations=3
        )
        assert serial == parallel

    def test_parallel_faster_than_serial(self):
        rs = make_runtime(ExecutionPolicy.SERIAL)
        run_vec(rs, iterations=4)
        rp = make_runtime(ExecutionPolicy.PARALLEL)
        run_vec(rp, iterations=4)
        assert rp.elapsed() < rs.elapsed()

    def test_no_races_under_parallel_scheduling(self):
        rt = make_runtime(ExecutionPolicy.PARALLEL)
        run_vec(rt, iterations=3)
        check_no_races(rt.timeline)


class TestSchedulingStructure:
    def test_independent_squares_use_two_streams(self):
        rt = make_runtime()
        run_vec(rt)
        kernels = rt.timeline.kernels()
        squares = [k for k in kernels if k.label == "square"]
        assert len(squares) == 2
        assert squares[0].stream_id != squares[1].stream_id

    def test_squares_overlap_in_time(self):
        rt = make_runtime()
        run_vec(rt)
        a, b = [k for k in rt.timeline.kernels() if k.label == "square"]
        assert a.overlaps(b)

    def test_sum_waits_for_both_squares(self):
        rt = make_runtime()
        run_vec(rt)
        kernels = rt.timeline.kernels()
        s = next(k for k in kernels if k.label == "sum")
        for sq in (k for k in kernels if k.label == "square"):
            assert s.start >= sq.end

    def test_sum_scheduled_on_parent_stream(self):
        # First child reuses a parent's stream (section IV-C).
        rt = make_runtime()
        run_vec(rt)
        kernels = rt.timeline.kernels()
        s = next(k for k in kernels if k.label == "sum")
        square_streams = {
            k.stream_id for k in kernels if k.label == "square"
        }
        assert s.stream_id in square_streams

    def test_serial_uses_single_stream(self):
        rt = make_runtime(ExecutionPolicy.SERIAL)
        run_vec(rt)
        assert len({k.stream_id for k in rt.timeline.kernels()}) == 1

    def test_dag_shape_matches_fig4(self):
        rt = make_runtime()
        run_vec(rt)
        dag = rt.dag
        # 3 kernels + 1 CPU access element (Z[0] read conflicts with sum).
        kernel_vertices = [v for v in dag.vertices if v.is_kernel]
        assert len(kernel_vertices) == 3
        cpu_vertices = [v for v in dag.vertices if v.is_cpu_access]
        assert len(cpu_vertices) == 1


class TestTransfersAndCoherence:
    def test_parallel_prefetches_inputs(self):
        rt = make_runtime()
        run_vec(rt)
        prefetches = [
            t
            for t in rt.timeline.transfers()
            if t.meta.get("kind") is TransferKind.PREFETCH
        ]
        # X and Y are written on the host each iteration: 2 prefetches.
        assert len(prefetches) == 2
        assert all(t.nbytes == N * 4 for t in prefetches)

    def test_maxwell_uses_eager_transfers(self):
        rt = make_runtime(gpu=GTX960)
        run_vec(rt)
        kinds = {t.meta.get("kind") for t in rt.timeline.transfers()
                 if t.kind is IntervalKind.TRANSFER_HTOD}
        assert kinds == {TransferKind.EAGER}

    def test_pagefault_policy_skips_transfers(self):
        rt = make_runtime(prefetch=PrefetchPolicy.NONE)
        run_vec(rt)
        htod = [
            t
            for t in rt.timeline.transfers()
            if t.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert htod == []
        # Fault bytes appear in kernel resources instead.
        fault = sum(
            r.meta["resources"].fault_bytes for r in rt.timeline.kernels()
        )
        assert fault == pytest.approx(2 * N * 4)

    def test_pagefault_slower_than_prefetch(self):
        r1 = make_runtime(prefetch=PrefetchPolicy.AUTO)
        run_vec(r1, iterations=3)
        r2 = make_runtime(prefetch=PrefetchPolicy.NONE)
        run_vec(r2, iterations=3)
        assert r1.elapsed() < r2.elapsed()

    def test_result_readback_charges_page_migration(self):
        rt = make_runtime()
        run_vec(rt)
        dtoh = [
            t
            for t in rt.timeline.transfers()
            if t.kind is IntervalKind.TRANSFER_DTOH
        ]
        assert len(dtoh) == 1  # Z[0] readback
        assert dtoh[0].nbytes == 4  # capped at the tiny array's size

    def test_no_duplicate_transfer_for_shared_input(self):
        # Two kernels reading the same stale array: one migration only,
        # the second kernel waits on the in-flight copy.
        rt = make_runtime()
        k = rt.build_kernel(
            lambda x, o, n: None, "read", "const ptr, ptr, sint32", COST
        )
        X = rt.array(N, name="X")
        O1, O2 = rt.array(N, name="O1"), rt.array(N, name="O2")
        X.copy_from_host(np.ones(N, dtype=np.float32))
        k(256, 256)(X, O1, N)
        k(256, 256)(X, O2, N)
        rt.sync()
        htod = [
            t
            for t in rt.timeline.transfers()
            if t.kind is IntervalKind.TRANSFER_HTOD
        ]
        assert len(htod) == 1


class TestCpuAccessPaths:
    def test_fast_path_when_gpu_idle(self):
        rt = make_runtime()
        X = rt.array(16, name="X")
        X[0] = 1.0
        _ = X[0]
        ctx = rt.context
        assert ctx.cpu_access_fast_path_count == 2
        assert ctx.cpu_access_element_count == 0

    def test_conflicting_access_becomes_element(self):
        rt = make_runtime()
        run_vec(rt)
        assert rt.context.cpu_access_element_count == 1

    def test_access_syncs_only_needed_stream(self):
        rt = make_runtime()
        k = rt.build_kernel(
            lambda x, n: None, "touch", "ptr, sint32", COST
        )
        slow = rt.build_kernel(
            lambda x, n: None,
            "slow",
            "ptr, sint32",
            LinearCostModel(flops_per_item=50_000.0),  # ~14 ms on the 1660
        )
        X, Y = rt.array(N, name="X"), rt.array(N, name="Y")
        k(256, 256)(X, N)
        slow(256, 256)(Y, N)
        _ = X[0]  # needs only the fast kernel
        # The slow kernel is still in flight.
        assert not rt.engine.idle

    def test_overhead_counters(self):
        rt = make_runtime()
        run_vec(rt, iterations=2)
        assert rt.context.kernel_count == 6


class TestLibraryCalls:
    def test_stream_aware_library_schedules_async(self):
        rt = make_runtime()
        X = rt.array(N, name="X")
        calls = []
        rt.library_call(
            lambda: calls.append("lib"),
            [(X, __import__("repro").AccessKind.READ_WRITE)],
            label="rapids",
            stream_aware=True,
            cost_seconds=1e-3,
        )
        assert calls == []  # asynchronous: runs at sim completion
        rt.sync()
        assert calls == ["lib"]
        assert rt.elapsed() == pytest.approx(1e-3, rel=0.05)

    def test_stream_unaware_library_syncs(self):
        rt = make_runtime()
        X = rt.array(N, name="X")
        calls = []
        rt.library_call(
            lambda: calls.append("lib"),
            [(X, __import__("repro").AccessKind.READ_WRITE)],
            label="legacy",
            stream_aware=False,
            cost_seconds=1e-3,
        )
        assert calls == ["lib"]  # ran synchronously
