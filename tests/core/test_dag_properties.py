"""Property-based tests of the DAG construction invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.dag import ComputationDAG
from repro.core.element import ComputationalElement
from repro.memory import AccessKind, DeviceArray

N_ARRAYS = 5

# A random program: each step touches a random subset of arrays with
# random access kinds.
access_kind = st.sampled_from(list(AccessKind))
step = st.lists(
    st.tuples(st.integers(0, N_ARRAYS - 1), access_kind),
    min_size=1,
    max_size=4,
    unique_by=lambda t: t[0],
)
program = st.lists(step, min_size=1, max_size=25)


def build(prog):
    arrays = [DeviceArray(4, name=f"a{i}") for i in range(N_ARRAYS)]
    dag = ComputationDAG()
    elements = []
    for i, accesses in enumerate(prog):
        e = ComputationalElement(
            [(arrays[j], kind) for j, kind in accesses], label=f"e{i}"
        )
        dag.add(e)
        elements.append(e)
    return dag, elements, arrays


class TestDagInvariants:
    @given(program)
    @settings(max_examples=200, deadline=None)
    def test_acyclic(self, prog):
        dag, _, _ = build(prog)
        assert dag.is_acyclic()

    @given(program)
    @settings(max_examples=200, deadline=None)
    def test_edges_point_forward(self, prog):
        dag, elements, _ = build(prog)
        order = {e.element_id: i for i, e in enumerate(elements)}
        for edge in dag.edges:
            assert order[edge.parent.element_id] < order[edge.child.element_id]

    @given(program)
    @settings(max_examples=200, deadline=None)
    def test_at_most_one_active_writer_per_array(self, prog):
        dag, _, arrays = build(prog)
        for arr in arrays:
            writers = [e for e in dag.frontier if e.writes_in_set(arr)]
            assert len(writers) <= 1

    @given(program)
    @settings(max_examples=200, deadline=None)
    def test_frontier_elements_are_active_with_nonempty_sets(self, prog):
        dag, _, _ = build(prog)
        for e in dag.frontier:
            assert e.active
            assert not e.dependency_set_empty

    @given(program)
    @settings(max_examples=200, deadline=None)
    def test_conflicting_elements_are_ordered(self, prog):
        """Soundness: any two elements conflicting on an array must be
        connected by a directed path (the schedule orders them)."""
        import networkx as nx

        dag, elements, arrays = build(prog)
        g = dag.to_networkx()
        closure = nx.transitive_closure_dag(g)

        def mode(e, arr):
            for a, k in e.accesses:
                if a is arr:
                    return k
            return None

        for i, a in enumerate(elements):
            for b in elements[i + 1 :]:
                for arr in arrays:
                    ka, kb = mode(a, arr), mode(b, arr)
                    if ka is None or kb is None:
                        continue
                    if ka.writes or kb.writes:
                        assert closure.has_edge(
                            a.element_id, b.element_id
                        ), (
                            f"{a.label} and {b.label} conflict on"
                            f" {arr.name} but are unordered"
                        )

    @given(program)
    @settings(max_examples=100, deadline=None)
    def test_children_count_matches_edges(self, prog):
        dag, elements, _ = build(prog)
        for e in elements:
            assert e.children_count == len(dag.children_of(e))
