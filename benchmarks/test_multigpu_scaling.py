"""Multi-GPU extension benchmarks (section-VI future work).

Not a paper figure — the paper leaves multi-GPU as future work — but the
design requirement it states ("compute data location and migration costs
at run time") is measurable: locality-aware placement must beat naive
round-robin on dependent work, and independent work must scale with the
GPU count.
"""

from repro.gpusim.timeline import IntervalKind
from repro.kernels import LinearCostModel
from repro.multigpu import DevicePlacementPolicy, MultiGpuScheduler

N = 1 << 22
COST = LinearCostModel(
    flops_per_item=800.0,
    dram_bytes_per_item=8.0,
    instructions_per_item=150.0,
)


def run_independent(n_gpus, policy=DevicePlacementPolicy.MIN_TRANSFER):
    sched = MultiGpuScheduler(["1660"] * n_gpus, policy=policy)
    k = sched.build_kernel(lambda x, n: None, "w", "ptr, sint32", COST)
    arrays = [
        sched.array(N, name=f"b{i}", materialize=False) for i in range(8)
    ]
    for a in arrays:
        sched.write_input(a)
    for _ in range(2):
        for a in arrays:
            k(512, 256)(a, N)
    sched.sync()
    return sched


def run_chain(policy):
    sched = MultiGpuScheduler(["1660", "1660"], policy=policy)
    k = sched.build_kernel(lambda x, n: None, "s", "ptr, sint32", COST)
    a = sched.array(N, name="c", materialize=False)
    sched.write_input(a)
    for _ in range(8):
        k(512, 256)(a, N)
    sched.sync()
    return sched


def test_multigpu_strong_scaling(benchmark):
    sched2 = benchmark.pedantic(
        run_independent, args=(2,), rounds=1, iterations=1
    )
    sched1 = run_independent(1)
    sched4 = run_independent(4)
    t1, t2, t4 = (s.elapsed for s in (sched1, sched2, sched4))
    print(
        f"\n8 independent pipelines: 1 GPU {t1 * 1e3:.1f} ms,"
        f" 2 GPUs {t2 * 1e3:.1f} ms, 4 GPUs {t4 * 1e3:.1f} ms"
    )
    assert t2 < 0.75 * t1
    assert t4 < t2
    # Work spread across all devices.
    assert all(c > 0 for c in sched2.device_kernel_counts())


def test_locality_beats_round_robin(benchmark):
    tuned = benchmark.pedantic(
        run_chain,
        args=(DevicePlacementPolicy.MIN_TRANSFER,),
        rounds=1,
        iterations=1,
    )
    naive = run_chain(DevicePlacementPolicy.ROUND_ROBIN)
    d2d_naive = sum(
        1
        for r in naive.engine.timeline
        if r.kind is IntervalKind.TRANSFER_D2D
    )
    d2d_tuned = sum(
        1
        for r in tuned.engine.timeline
        if r.kind is IntervalKind.TRANSFER_D2D
    )
    print(
        f"\ndependent chain: round-robin {naive.elapsed * 1e3:.1f} ms"
        f" ({d2d_naive} D2D copies), min-transfer"
        f" {tuned.elapsed * 1e3:.1f} ms ({d2d_tuned} D2D copies)"
    )
    assert tuned.elapsed < naive.elapsed
    assert d2d_tuned == 0
    assert d2d_naive >= 3
