"""Fig. 9 — execution time relative to the contention-free bound.

Paper: most benchmarks reach ~60-80 % of their theoretical
contention-free peak (space-sharing costs 30-40 %), while B&S — ten
identical chains fighting over the FP64 units and the PCIe link —
reaches only ~15-20 % of its bound.
"""

from repro.harness import figure9


def test_fig9_contention_free_bound(benchmark, bench_config):
    data = benchmark.pedantic(
        figure9,
        kwargs={
            "scales_per_gpu": bench_config["scales_per_gpu"],
            "iterations": bench_config["iterations"],
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(data.render())

    for row in data.rows:
        # A bound is a bound (tiny numeric slack).
        assert row["ratio"] <= 1.02, (
            f"{row['benchmark']}@{row['gpu']} ratio {row['ratio']:.2f}"
        )
        assert row["ratio"] > 0.05

    by_bench = {}
    for row in data.rows:
        by_bench.setdefault(row["benchmark"], []).append(row["ratio"])
    means = {b: sum(v) / len(v) for b, v in by_bench.items()}

    # B&S is the outlier, far below everyone else.
    assert means["b&s"] < 0.45
    assert means["b&s"] == min(means.values())
    # The others keep contention losses moderate.
    others = [m for b, m in means.items() if b != "b&s"]
    assert all(m > 0.3 for m in others)
    assert sum(others) / len(others) > 0.5
