"""Regression micro-benchmark: free-stream retrieval must not scan.

``StreamManager.retrieve_free_stream`` used to walk every stream in
creation order on each retrieval — O(n) per scheduled computation, which
adds up on long-lived engines serving hundreds of streams.  The manager
now keeps a free-list fed by per-stream idle callbacks, making retrieval
amortized O(1).  This benchmark drives a retrieval-heavy churn loop at
two stream counts and asserts the per-retrieval cost does not grow with
the stream population.
"""

import pytest

from repro.core.streams import StreamManager
from repro.gpusim import Device, GTX1660_SUPER, SimEngine
from repro.gpusim.ops import KernelOp, KernelResourceRequest


def tiny_op():
    return KernelOp(
        label="tick",
        resources=KernelResourceRequest(
            flops=1e3, fp64=False, dram_bytes=0, l2_bytes=0,
            instructions=1e3, threads_total=64,
        ),
    )


def churn(manager: StreamManager, engine: SimEngine, retrievals: int):
    """Retrieve a free stream, occupy it briefly, drain — repeatedly."""
    for _ in range(retrievals):
        stream = manager.retrieve_free_stream()
        engine.submit(stream, tiny_op())
        engine.sync_stream(stream)


def populated_manager(stream_count: int):
    engine = SimEngine(Device(GTX1660_SUPER))
    manager = StreamManager(engine)
    # Grow the population: hold every stream busy so each retrieval is
    # forced to create a new one, then drain them all back to the pool.
    streams = []
    for _ in range(stream_count):
        s = manager.retrieve_free_stream()
        engine.submit(s, tiny_op())
        streams.append(s)
    engine.sync_all()
    return manager, engine


@pytest.mark.parametrize("streams", [16, 512])
def test_retrieval_throughput(benchmark, streams):
    manager, engine = populated_manager(streams)
    benchmark.pedantic(
        churn, args=(manager, engine, 2000), rounds=3, iterations=1
    )
    assert manager.created_count == streams
    assert manager.reused_count >= 2000


def test_retrieval_work_is_population_independent():
    """The operation-count proxy for O(1): the busy/free churn performs
    the same number of heap pushes per retrieval whether the manager
    owns 8 streams or 800 (the old scan touched all of them)."""
    import heapq

    counts = {}
    real_push = heapq.heappush
    for population in (8, 256):
        manager, engine = populated_manager(population)
        pushes = 0

        def counting_push(heap, item):
            nonlocal pushes
            pushes += 1
            real_push(heap, item)

        heapq.heappush = counting_push
        try:
            churn(manager, engine, 500)
        finally:
            heapq.heappush = real_push
        counts[population] = pushes
    # One idle re-enqueue per drain, independent of population size.
    assert counts[256] <= counts[8] + 8
