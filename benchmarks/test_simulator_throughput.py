"""Simulator micro-benchmarks (the one place wall-clock time matters).

These measure the discrete-event engine and the scheduler themselves,
so regressions in the substrate's algorithmic complexity (rate
repricing, dependency-set updates, frontier pruning) show up here.
"""


from repro import GrCUDARuntime
from repro.kernels import LinearCostModel

COST = LinearCostModel(
    flops_per_item=100.0, dram_bytes_per_item=8.0
)


def many_kernel_run(num_kernels: int = 200) -> float:
    rt = GrCUDARuntime(gpu="GTX 1660 Super")
    n = 1 << 16
    k = rt.build_kernel(lambda x, m: None, "k", "ptr, sint32", COST)
    arrays = [rt.array(n, materialize=False) for _ in range(8)]
    for i in range(num_kernels):
        k(64, 256)(arrays[i % len(arrays)], n)
    rt.sync()
    return rt.elapsed()


def wide_fanout_run(width: int = 64) -> float:
    rt = GrCUDARuntime(gpu="Tesla P100")
    n = 1 << 16
    k = rt.build_kernel(lambda x, m: None, "k", "const ptr, sint32", COST)
    w = rt.build_kernel(lambda x, m: None, "w", "ptr, sint32", COST)
    shared = rt.array(n, materialize=False, name="shared")
    w(64, 256)(shared, n)
    for _ in range(width):  # all read-only: full fan-out
        k(64, 256)(shared, n)
    rt.sync()
    return rt.elapsed()


def test_engine_throughput_sequential(benchmark):
    elapsed = benchmark(many_kernel_run)
    assert elapsed > 0


def test_engine_throughput_fanout(benchmark):
    elapsed = benchmark(wide_fanout_run)
    assert elapsed > 0


def test_dependency_inference_cost(benchmark):
    """Scheduling overhead of dependency-set updates on a long chain."""

    def chained(num_kernels: int = 300) -> int:
        rt = GrCUDARuntime(gpu="GTX 1660 Super")
        n = 1 << 12
        k = rt.build_kernel(
            lambda x, y, m: None, "k", "const ptr, ptr, sint32", COST
        )
        a = rt.array(n, materialize=False)
        b = rt.array(n, materialize=False)
        for i in range(num_kernels):
            if i % 2 == 0:
                k(16, 128)(a, b, n)
            else:
                k(16, 128)(b, a, n)
        rt.sync()
        return rt.dag.num_edges

    edges = benchmark(chained)
    assert edges >= 299
