"""Simulator micro-benchmarks (the one place wall-clock time matters).

These measure the discrete-event engine and the scheduler themselves,
so regressions in the substrate's algorithmic complexity (rate
repricing, dependency-set updates, frontier pruning) show up here.
"""


from repro import GrCUDARuntime
from repro.gpusim import Device, SimEngine
from repro.gpusim.ops import KernelOp, KernelResourceRequest
from repro.gpusim.specs import gpu_by_name
from repro.kernels import LinearCostModel

COST = LinearCostModel(
    flops_per_item=100.0, dram_bytes_per_item=8.0
)


def many_kernel_run(num_kernels: int = 200) -> float:
    rt = GrCUDARuntime(gpu="GTX 1660 Super")
    n = 1 << 16
    k = rt.build_kernel(lambda x, m: None, "k", "ptr, sint32", COST)
    arrays = [rt.array(n, materialize=False) for _ in range(8)]
    for i in range(num_kernels):
        k(64, 256)(arrays[i % len(arrays)], n)
    rt.sync()
    return rt.elapsed()


def wide_fanout_run(width: int = 64) -> float:
    rt = GrCUDARuntime(gpu="Tesla P100")
    n = 1 << 16
    k = rt.build_kernel(lambda x, m: None, "k", "const ptr, sint32", COST)
    w = rt.build_kernel(lambda x, m: None, "w", "ptr, sint32", COST)
    shared = rt.array(n, materialize=False, name="shared")
    w(64, 256)(shared, n)
    for _ in range(width):  # all read-only: full fan-out
        k(64, 256)(shared, n)
    rt.sync()
    return rt.elapsed()


def many_streams_run(
    num_streams: int = 256, ops_per_stream: int = 4
) -> SimEngine:
    """Round-robin submission over many live streams.

    This regresses the O(streams)-per-step scan specifically: the
    pre-PR-3 engine re-scanned every stream per step in
    ``_drain_instantaneous`` and in the ``sync_all`` predicate, so
    long-lived engines with hundreds of streams paid O(streams) per
    step even when one stream had work.  The indexed engine visits only
    ready streams and keeps a busy-stream counter.
    """
    engine = SimEngine(Device(gpu_by_name("Tesla P100")))
    streams = [
        engine.create_stream(label=f"rr-{i}") for i in range(num_streams)
    ]
    for round_idx in range(ops_per_stream):
        for i, stream in enumerate(streams):
            engine.submit(
                stream,
                KernelOp(
                    label=f"k{round_idx}-{i}",
                    resources=KernelResourceRequest(
                        flops=1e8 + (i % 5) * 2e7,
                        fp64=False,
                        dram_bytes=float(1 << 14),
                        l2_bytes=0.0,
                        instructions=0.0,
                        threads_total=2048,
                    ),
                ),
            )
        engine.charge_host_time(1e-6)
    engine.sync_all()
    return engine


def test_engine_throughput_sequential(benchmark):
    elapsed = benchmark(many_kernel_run)
    assert elapsed > 0


def test_engine_throughput_many_streams(benchmark):
    engine = benchmark(many_streams_run)
    assert len(engine.timeline) == 256 * 4
    # Repricing tracks running-set changes (2 per op), never steps.
    assert engine.repricings <= engine.running_set_changes + 1


def test_engine_throughput_fanout(benchmark):
    elapsed = benchmark(wide_fanout_run)
    assert elapsed > 0


def test_dependency_inference_cost(benchmark):
    """Scheduling overhead of dependency-set updates on a long chain."""

    def chained(num_kernels: int = 300) -> int:
        rt = GrCUDARuntime(gpu="GTX 1660 Super")
        n = 1 << 12
        k = rt.build_kernel(
            lambda x, y, m: None, "k", "const ptr, ptr, sint32", COST
        )
        a = rt.array(n, materialize=False)
        b = rt.array(n, materialize=False)
        for i in range(num_kernels):
            if i % 2 == 0:
                k(16, 128)(a, b, n)
            else:
                k(16, 128)(b, a, n)
        rt.sync()
        return rt.dag.num_edges

    edges = benchmark(chained)
    assert edges >= 299
