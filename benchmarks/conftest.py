"""Shared configuration for the figure-reproduction benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one of the paper's tables/figures on the
simulator, prints the same rows the paper reports, and asserts the
headline *shape* (who wins, roughly by how much).  Simulated time is
deterministic; pytest-benchmark's wall-clock numbers measure the
simulator itself, while the printed tables carry the paper-facing
results.

Environment knobs:

* ``REPRO_BENCH_SCALES`` (default 5: the paper's full sweep) — scale
  points per GPU (each GPU still only runs the sizes that fit it);
* ``REPRO_BENCH_ITERS``  (default 4) — iterations per execution.
"""

import os

import pytest

SCALES_PER_GPU = int(os.environ.get("REPRO_BENCH_SCALES", "5"))
ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERS", "4"))


@pytest.fixture(scope="session")
def bench_config():
    return {"scales_per_gpu": SCALES_PER_GPU, "iterations": ITERATIONS}
