"""Fig. 12 — hardware metrics, serial vs parallel, on the GTX 1660 Super.

Paper: "all benchmarks in which different kernels overlap their
execution show an increase in hardware utilization"; VEC shows *no*
memory-throughput increase (its speedup is pure transfer overlap); ML's
low serial IPC (the tall-matrix kernel) rises the most under parallel
scheduling; dense-matrix benchmarks lean on L2.
"""

from repro.harness import figure12


def test_fig12_hardware_metrics(benchmark, bench_config):
    data = benchmark.pedantic(
        figure12,
        kwargs={"iterations": bench_config["iterations"]},
        rounds=1,
        iterations=1,
    )
    print()
    print(data.render())

    rows = {r["benchmark"]: r for r in data.rows}

    for name, r in rows.items():
        # Parallel scheduling never lowers utilization: same counters,
        # shorter or equal makespan.
        assert (
            r["dram_parallel_GB/s"] >= r["dram_serial_GB/s"] * 0.99
        ), name
        assert r["ipc_parallel"] >= r["ipc_serial"] * 0.99, name

    # VEC: no meaningful memory-throughput increase (speedup is pure
    # transfer overlap; kernels never co-run).
    vec_gain = (
        rows["vec"]["dram_parallel_GB/s"]
        / max(rows["vec"]["dram_serial_GB/s"], 1e-12)
    )
    # CC-overlapping benchmarks gain clearly more than VEC.
    ml_gain = (
        rows["ml"]["ipc_parallel"] / max(rows["ml"]["ipc_serial"], 1e-12)
    )
    img_gain = (
        rows["img"]["dram_parallel_GB/s"]
        / max(rows["img"]["dram_serial_GB/s"], 1e-12)
    )
    assert ml_gain > vec_gain
    assert img_gain > vec_gain

    # ML's serial IPC is the lowest (the tall-matrix NB kernel).
    serial_ipcs = {n: r["ipc_serial"] for n, r in rows.items()}
    assert serial_ipcs["ml"] == min(serial_ipcs.values())

    # B&S: very high FLOPS, negligible cache use (section V-F).
    assert rows["b&s"]["gflops_serial"] > rows["vec"]["gflops_serial"]
