"""Fig. 7 — parallel scheduler speedup over the serial GrCUDA scheduler.

Paper headline: geomean 44 % speedup across the three GPUs, with the
GTX 960 at ~25 % and the P100 best at ~61 %; the parallel scheduler is
*always* at least as fast; speedups are mostly independent of input
size.
"""

from repro.harness import figure7
from repro.metrics import geomean


def test_fig7_parallel_vs_serial(benchmark, bench_config):
    data = benchmark.pedantic(
        figure7,
        kwargs={
            "scales_per_gpu": bench_config["scales_per_gpu"],
            "iterations": bench_config["iterations"],
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(data.render())

    speedups = [r["speedup"] for r in data.rows]
    # Never slower than serial (small numeric slack).
    assert all(s > 0.97 for s in speedups)
    overall = geomean(speedups)
    # Paper: 1.44x. Accept a band preserving the headline.
    assert 1.25 <= overall <= 1.9, f"overall geomean {overall:.2f}"

    by_gpu = {}
    for r in data.rows:
        by_gpu.setdefault(r["gpu"], []).append(r["speedup"])
    gm = {g: geomean(v) for g, v in by_gpu.items()}
    # Per-GPU ordering: the 960 gains least; the big GPUs gain more.
    assert gm["GTX 960"] < gm["GTX 1660 Super"]
    assert gm["GTX 960"] < gm["Tesla P100"]
    assert 1.0 <= gm["GTX 960"] <= 1.45


def test_fig7_block_size_robustness(benchmark, bench_config):
    """DAG scheduling is more robust to the block-size choice: with
    tiny 32-thread blocks the serial scheduler under-utilizes the GPU,
    while the parallel scheduler recovers most of the loss by running
    kernels concurrently (section V-C)."""
    data32 = benchmark.pedantic(
        figure7,
        kwargs={
            "scales_per_gpu": 1,
            "block_sizes": (32,),
            "iterations": bench_config["iterations"],
        },
        rounds=1,
        iterations=1,
    )
    data256 = figure7(
        scales_per_gpu=1,
        block_sizes=(256,),
        iterations=bench_config["iterations"],
    )
    s32 = geomean([r["speedup"] for r in data32.rows])
    s256 = geomean([r["speedup"] for r in data256.rows])
    print(f"\ngeomean speedup: block=32 {s32:.2f}x, block=256 {s256:.2f}x")
    # Smaller blocks -> bigger parallel-over-serial speedup.
    assert s32 >= s256 * 0.98
