"""Fig. 11 — transfer/computation overlap fractions per benchmark.

Paper (per-benchmark signatures):

* VEC's speedup comes only from transfer/compute overlap — CC ~ 0;
* B&S has substantial CC (ten chains) on every GPU;
* the P100 masks B&S computation behind transfers better than the 1660
  (higher CT on the faster-FP64 device -> better speedup);
* TOT >= each individual overlap kind.
"""

from repro.harness import figure11


def test_fig11_overlap_fractions(benchmark, bench_config):
    data = benchmark.pedantic(
        figure11,
        kwargs={"iterations": bench_config["iterations"]},
        rounds=1,
        iterations=1,
    )
    print()
    print(data.render())

    def cell(gpu, bench):
        return next(
            r
            for r in data.rows
            if r["gpu"] == gpu and r["benchmark"] == bench
        )

    for row in data.rows:
        for key in ("CT%", "TC%", "CC%", "TOT%"):
            assert -1e-6 <= row[key] <= 100 + 1e-6
        # TOT counts union overlap: it can exceed neither 100 % nor be
        # smaller than... nothing in general, but a benchmark with any
        # CC or CT must have TOT > 0.
        if row["CC%"] > 1 or row["CT%"] > 1:
            assert row["TOT%"] > 0

    # VEC: pure transfer/compute overlap, no kernel-kernel overlap.
    for gpu in ("GTX 960", "GTX 1660 Super", "Tesla P100"):
        assert cell(gpu, "vec")["CC%"] < 10.0

    # B&S on the slow-FP64 consumer card: the ten chains pile up on the
    # FP64 units and overlap heavily (CC).
    assert cell("GTX 1660 Super", "b&s")["CC%"] > 30.0

    # Section V-F: on the P100 the (20x faster) FP64 computation hides
    # behind the transfers — "the Tesla P100 completely masks the
    # computation with transfer (high CT)" — so CT dominates CC there.
    p100_bs = cell("Tesla P100", "b&s")
    assert p100_bs["CT%"] > 60.0
    assert p100_bs["CT%"] > p100_bs["CC%"]
    assert (
        cell("Tesla P100", "b&s")["speedup"]
        > cell("GTX 960", "b&s")["speedup"]
    )
