"""Table I — device-memory footprints of the benchmark inputs.

Paper: inputs span ~10-90 % of each GPU's memory; the largest size per
GPU approaches (but fits) device memory: 2 GB / 6 GB / 12.2 GB.
"""

from repro.gpusim.specs import ALL_GPUS
from repro.harness import table1
from repro.workloads.suite import BENCHMARKS, default_scales


def test_table1_footprints(benchmark):
    data = benchmark.pedantic(table1, rounds=1, iterations=1)
    print()
    print(data.render())

    for spec in ALL_GPUS:
        for name in BENCHMARKS:
            scales = default_scales(name, spec)
            assert scales, f"{name} has no fitting scale on {spec.name}"
            small = BENCHMARKS[name](scales[0], execute=False)
            large = BENCHMARKS[name](scales[-1], execute=False)
            fp_small = small.memory_footprint_bytes()
            fp_large = large.memory_footprint_bytes()
            # Smallest input well under memory; largest approaches it.
            assert fp_small <= 0.35 * spec.device_memory_bytes
            assert fp_large <= 0.92 * spec.device_memory_bytes
    # The biggest configured inputs use most of the P100's memory.
    p100 = ALL_GPUS[2]
    largest = max(
        BENCHMARKS[name](
            default_scales(name, p100)[-1], execute=False
        ).memory_footprint_bytes()
        for name in BENCHMARKS
    )
    assert largest >= 0.75 * p100.device_memory_bytes
