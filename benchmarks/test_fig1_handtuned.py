"""Fig. 1 — achievable hand-tuned CUDA speedup over serial execution.

Paper: hand-crafted transfer/execution overlap and space-sharing
accelerates the six benchmarks by >50 % on average (geomean 1.51x on the
GTX 1660 Super, 1.62x on the Tesla P100); VEC and B&S gain the most.
"""

from repro.harness import figure1
from repro.metrics import geomean


def test_fig1_handtuned_speedup(benchmark, bench_config):
    data = benchmark.pedantic(
        figure1,
        kwargs={"iterations": bench_config["iterations"]},
        rounds=1,
        iterations=1,
    )
    print()
    print(data.render())

    for gpu in ("GTX 1660 Super", "Tesla P100"):
        speedups = [row[gpu] for row in data.rows]
        gm = geomean(speedups)
        # Paper: 1.51x / 1.62x.  Accept the band that preserves the
        # claim "more than 50 % achievable by hand".
        assert 1.2 <= gm <= 2.3, f"{gpu} geomean {gm:.2f} out of band"
        # Hand tuning never loses to serial execution.
        assert all(s > 0.95 for s in speedups)
    by_name = {r["benchmark"]: r for r in data.rows}
    # The streaming benchmarks gain the most from hand-tuned overlap.
    assert by_name["vec"]["Tesla P100"] > by_name["hits"]["Tesla P100"]
