"""Serving-layer benchmark: requests/sec under mixed multi-tenant load.

Not a paper figure — the serving subsystem is the ROADMAP's jump from
single-program scheduling to shared-infrastructure dispatch.  The
acceptance bar it tracks:

* >= 100 submitted task graphs across >= 4 tenants on a >= 2-GPU fleet
  in one run;
* per-tenant numerical results identical to serial single-runtime
  execution;
* batching and the capture cache measurably lift throughput over the
  unbatched/uncached dispatch path.
"""

import numpy as np

from repro.multigpu import DevicePlacementPolicy
from repro.serve import (
    AdmissionPolicy,
    SchedulerService,
    ServeConfig,
    execute_serial,
)
from repro.serve.workloads import mixed_workload_graphs, traffic_mix_graphs

TENANTS = 4
REQUESTS = 100
FLEET = 2
SEED = 11
MEAN_INTERARRIVAL = 120e-6


def _submit_all(service, graphs):
    rng = np.random.default_rng(SEED)
    arrival = 0.0
    submitted = []
    for i, graph in enumerate(graphs):
        arrival += float(rng.exponential(MEAN_INTERARRIVAL))
        submitted.append(
            (
                service.submit(
                    f"tenant{i % TENANTS}", graph, arrival_time=arrival
                ),
                graph,
            )
        )
    return submitted


def run_serving(
    admission=AdmissionPolicy.FAIR_SHARE,
    placement=DevicePlacementPolicy.LEAST_LOADED,
    batch_window=500e-6,
    capture_cache=True,
    requests=REQUESTS,
    fleet_topology=None,
    width_normalized=True,
    traffic=None,
):
    if traffic is None:
        graphs = mixed_workload_graphs(requests, seed=SEED)
    else:
        graphs = traffic_mix_graphs(requests, mix=traffic, seed=SEED)
    service = SchedulerService(
        fleet_size=FLEET,
        fleet_topology=fleet_topology,
        config=ServeConfig(
            admission=admission,
            placement=placement,
            batch_window=batch_window,
            capture_cache=capture_cache,
            width_normalized=width_normalized,
        ),
    )
    for t in range(TENANTS):
        service.register_tenant(f"tenant{t}", priority=TENANTS - 1 - t)
    submitted = _submit_all(service, graphs)
    report = service.run()
    return report, submitted


def test_serving_throughput_mixed_load(benchmark):
    report, submitted = benchmark.pedantic(
        run_serving, rounds=1, iterations=1
    )
    m = report.metrics
    print(
        f"\nserving {m.completed} graphs / {m.tenants} tenants /"
        f" {FLEET} GPUs: {m.throughput_rps:.0f} req/s,"
        f" p50 {m.latency.p50 * 1e3:.2f} ms,"
        f" p99 {m.latency.p99 * 1e3:.2f} ms,"
        f" util {m.mean_utilization * 100:.0f}%,"
        f" capture {m.capture_hits}/{m.capture_hits + m.capture_misses}"
    )
    # Acceptance bar: scale and isolation.
    assert m.completed >= 100
    assert m.tenants >= 4
    assert m.throughput_rps > 0
    # Every tenant was served and none starved under fair-share.
    assert all(s.count > 0 for s in m.per_tenant.values())
    # The fleet actually shared the load.
    assert all(b > 0 for b in m.device_busy)
    # Capture cache: 3 distinct topologies; every request either replays
    # a cached plan or pays the inference path, and the replayed count
    # matches the per-request flags.
    assert m.capture_hits + m.capture_misses == m.completed
    assert m.capture_hits == sum(1 for r in report.results if r.replayed)
    assert m.capture_hits > m.capture_misses

    # Ground truth: every request's outputs are identical to running its
    # graph alone on a private serial runtime.
    by_id = {r.request_id: r for r in report.results}
    for request_id, graph in submitted:
        reference = execute_serial(graph)
        result = by_id[request_id]
        for name, expected in reference.items():
            assert np.array_equal(result.outputs[name], expected), (
                f"request {request_id} ({graph.name}) diverged on {name}"
            )


def test_batching_and_capture_lift_throughput():
    tuned, _ = run_serving(requests=48)
    plain, _ = run_serving(
        requests=48, batch_window=0.0, capture_cache=False
    )
    print(
        f"\nbatched+cached {tuned.metrics.throughput_rps:.0f} req/s vs"
        f" unbatched/uncached {plain.metrics.throughput_rps:.0f} req/s"
    )
    assert plain.metrics.batched_requests == 0
    assert tuned.metrics.throughput_rps > plain.metrics.throughput_rps


def test_placement_policies_all_serve():
    for placement in DevicePlacementPolicy:
        report, _ = run_serving(requests=24, placement=placement)
        assert report.metrics.completed == 24
        assert all(b > 0 for b in report.metrics.device_busy), (
            f"{placement}: a device sat idle"
        )


def test_width_normalized_placement_skewed_mix(benchmark):
    """Satellite check for width-normalized LEAST_LOADED: on a fleet of
    mixed slot widths under the skewed traffic mix, pricing slots by
    outstanding-work/GPUs must actually change placement (wide slots
    absorb more of the backlog) without costing throughput."""
    normalized, submitted = benchmark.pedantic(
        run_serving,
        kwargs={
            "requests": 60,
            "fleet_topology": [2, 2, 1, 1],
            "traffic": "skewed",
            "width_normalized": True,
        },
        rounds=1,
        iterations=1,
    )
    raw, _ = run_serving(
        requests=60,
        fleet_topology=[2, 2, 1, 1],
        traffic="skewed",
        width_normalized=False,
    )
    nm, rm = normalized.metrics, raw.metrics
    print(
        f"\nwidth-normalized {nm.throughput_rps:.0f} req/s"
        f" (p99 {nm.latency.p99 * 1e3:.2f} ms) vs raw-clock"
        f" {rm.throughput_rps:.0f} req/s"
        f" (p99 {rm.latency.p99 * 1e3:.2f} ms)"
    )
    assert nm.completed == 60 and rm.completed == 60
    # The pricing change is real: the two runs place differently.
    place = lambda rep: [  # noqa: E731
        r.device_index
        for r in sorted(rep.results, key=lambda r: r.request_id)
    ]
    assert place(normalized) != place(raw)
    # ...and doesn't cost throughput on the mix it was built for.
    assert nm.throughput_rps >= rm.throughput_rps * 0.98
    # Numerics are placement-independent: spot-check against serial.
    by_id = {r.request_id: r for r in normalized.results}
    for request_id, graph in submitted[:10]:
        reference = execute_serial(graph)
        result = by_id[request_id]
        for name, expected in reference.items():
            assert np.array_equal(result.outputs[name], expected)


def test_heterogeneous_fleet_throughput(benchmark):
    """The ``--fleet 2,2,1,1`` shape: multi-GPU slots serve the mixed
    load correctly and every slot carries traffic."""
    report, submitted = benchmark.pedantic(
        run_serving,
        kwargs={"requests": 60, "fleet_topology": [2, 2, 1, 1]},
        rounds=1,
        iterations=1,
    )
    m = report.metrics
    print(
        f"\nheterogeneous [2,2,1,1]: {m.throughput_rps:.0f} req/s,"
        f" p99 {m.latency.p99 * 1e3:.2f} ms,"
        f" util {m.mean_utilization * 100:.0f}%"
    )
    assert report.fleet.topology == [2, 2, 1, 1]
    assert m.completed == 60
    assert all(b > 0 for b in m.device_busy)
    by_id = {r.request_id: r for r in report.results}
    for request_id, graph in submitted:
        reference = execute_serial(graph)
        result = by_id[request_id]
        for name, expected in reference.items():
            assert np.array_equal(result.outputs[name], expected), (
                f"request {request_id} ({graph.name}) diverged on {name}"
            )
