"""Fig. 8 — GrCUDA scheduler vs hand-optimized CUDA Graphs baselines.

Paper: the automatic scheduler is "never significantly slower than any
of the CUDA Graphs baselines and is often faster"; the large gaps vs the
graph modes on the 1660/P100 are explained by automatic prefetching
(which the CUDA Graphs API cannot do); against the hand-tuned
events-plus-prefetch baseline the scheduler achieves parity.
"""

from repro.harness import figure8
from repro.metrics import geomean
from repro.workloads import Mode


def test_fig8_vs_cuda_graphs(benchmark, bench_config):
    data = benchmark.pedantic(
        figure8,
        kwargs={
            "scales_per_gpu": bench_config["scales_per_gpu"],
            "iterations": bench_config["iterations"],
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(data.render())

    graph_cols = [
        f"vs {Mode.GRAPH_MANUAL.value}",
        f"vs {Mode.GRAPH_CAPTURE.value}",
    ]
    tuned_col = f"vs {Mode.HANDTUNED.value}"

    # Never significantly slower than any baseline (5 % tolerance).
    for row in data.rows:
        for col in (*graph_cols, tuned_col):
            assert row[col] > 0.9, (
                f"{row['benchmark']}@{row['gpu']}: {col} = {row[col]:.2f}"
            )

    # On page-fault GPUs, prefetching beats the graph modes clearly.
    fault_rows = [r for r in data.rows if r["gpu"] != "GTX 960"]
    for col in graph_cols:
        gm = geomean([r[col] for r in fault_rows])
        assert gm > 1.1, f"{col} geomean {gm:.2f}"

    # Parity with the hand-tuned prefetching baseline.
    gm_tuned = geomean([r[tuned_col] for r in data.rows])
    assert 0.95 <= gm_tuned <= 1.25, f"hand-tuned geomean {gm_tuned:.2f}"

    # On Maxwell every mode moves data eagerly: near-parity everywhere.
    maxwell = [r for r in data.rows if r["gpu"] == "GTX 960"]
    for col in graph_cols:
        gm = geomean([r[col] for r in maxwell])
        assert 0.9 <= gm <= 1.35, f"960 {col} geomean {gm:.2f}"
