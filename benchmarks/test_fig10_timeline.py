"""Fig. 10 — an ML-ensemble execution timeline with overlap regions.

Paper: the ML timeline shows the two classifier branches on two streams,
their input transfers staircased on the copy engine, each transfer
overlapping the other branch's computation (CT/TC), and the branches
overlapping each other (CC).
"""

from repro.harness import figure10
from repro.workloads import Mode, create_benchmark


def test_fig10_ml_timeline(benchmark, bench_config):
    data = benchmark.pedantic(
        figure10,
        kwargs={"iterations": max(2, bench_config["iterations"])},
        rounds=1,
        iterations=1,
    )
    print()
    print(data.render())

    pct = {row["metric"]: row["percent"] for row in data.rows}
    # All three overlap species are present in the ML timeline.
    assert pct["CT"] > 5.0
    assert pct["TC"] > 5.0
    assert pct["CC"] > 5.0
    assert pct["TOT"] > max(pct["CT"], pct["CC"]) - 1e-9
    # The rendered timeline contains both streams and both transfer
    # kinds, like the paper's plot.
    art = data.summary["timeline"]
    assert "S1" in art and "S2" in art
    assert ">" in art  # HtoD


def test_fig10_structure_two_streams(benchmark, bench_config):
    bench = create_benchmark(
        "ml", 800_000, iterations=2, execute=False
    )
    result = benchmark.pedantic(
        bench.run,
        args=("GTX 1660 Super", Mode.PARALLEL),
        rounds=1,
        iterations=1,
    )
    # Two classifier branches -> two streams (Fig. 2 / Fig. 10).
    assert result.stream_count == 2
    kernels = {r.label for r in result.timeline.kernels()}
    assert {"nb_mmul", "rr_mmul", "softmax", "argmax"} <= kernels
