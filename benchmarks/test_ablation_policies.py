"""Ablations of the scheduler's design choices (section IV-C).

* **Parent-stream policy** — DISJOINT (first child inherits, others get
  fresh streams) vs SAME_AS_PARENT (everything on the parent's stream):
  the simpler policy loses concurrency on branchy DAGs.
* **New-stream policy** — FIFO reuse vs ALWAYS_NEW: reuse keeps the
  stream count bounded with no performance cost.
* **Prefetching** — AUTO vs NONE: without prefetch, concurrent kernels
  bottleneck on the page-fault controller ("disabling automatic
  prefetching is not recommended", section V-C).
"""

import pytest

from repro import (
    ExecutionPolicy,
    NewStreamPolicy,
    ParentStreamPolicy,
    PrefetchPolicy,
    SchedulerConfig,
)
from repro.workloads import Mode, create_benchmark
from repro.workloads.base import Benchmark


def run_with_config(name, scale, config, iterations=3):
    bench = create_benchmark(
        name, scale, iterations=iterations, execute=False
    )
    original = Benchmark._build_session

    def patched(self, gpu, execution, prefetch, movement=None,
                gpus=1, placement=None, **session_knobs):
        from repro.session import Session

        return Session(gpu=gpu, config=config)

    Benchmark._build_session = patched
    try:
        return bench.run("GTX 1660 Super", Mode.PARALLEL)
    finally:
        Benchmark._build_session = original


class TestParentStreamPolicy:
    def test_same_as_parent_slower_on_branchy_dag(self, benchmark):
        disjoint = run_with_config(
            "img",
            3_200,
            SchedulerConfig(parent_stream=ParentStreamPolicy.DISJOINT),
        )

        def run_simple():
            return run_with_config(
                "img",
                3_200,
                SchedulerConfig(
                    parent_stream=ParentStreamPolicy.SAME_AS_PARENT
                ),
            )

        simple = benchmark.pedantic(run_simple, rounds=1, iterations=1)
        ratio = simple.elapsed / disjoint.elapsed
        print(
            f"\nIMG: SAME_AS_PARENT/DISJOINT time ratio = {ratio:.2f}x"
            f" (disjoint streams: {disjoint.stream_count},"
            f" simple: {simple.stream_count})"
        )
        assert ratio >= 1.0  # simpler policy never wins on time
        assert simple.stream_count <= disjoint.stream_count

    def test_same_as_parent_equal_on_chain_dag(self, benchmark):
        # VEC's join means only the two squares can overlap; the simple
        # policy still keeps the independent roots apart.
        disjoint = benchmark.pedantic(
            run_with_config,
            args=(
                "vec",
                20_000_000,
                SchedulerConfig(
                    parent_stream=ParentStreamPolicy.DISJOINT
                ),
            ),
            rounds=1,
            iterations=1,
        )
        simple = run_with_config(
            "vec", 20_000_000,
            SchedulerConfig(
                parent_stream=ParentStreamPolicy.SAME_AS_PARENT
            ),
        )
        assert simple.elapsed == pytest.approx(
            disjoint.elapsed, rel=0.15
        )


class TestNewStreamPolicy:
    def test_fifo_reuse_bounds_stream_count(self, benchmark):
        fifo = benchmark.pedantic(
            run_with_config,
            args=(
                "hits",
                4_000_000,
                SchedulerConfig(new_stream=NewStreamPolicy.FIFO),
            ),
            rounds=1,
            iterations=1,
        )
        fresh = run_with_config(
            "hits", 4_000_000,
            SchedulerConfig(new_stream=NewStreamPolicy.ALWAYS_NEW),
        )
        print(
            f"\nHITS streams: FIFO {fifo.stream_count},"
            f" ALWAYS_NEW {fresh.stream_count}"
        )
        assert fifo.stream_count <= fresh.stream_count
        # ...at no performance cost.
        assert fifo.elapsed == pytest.approx(fresh.elapsed, rel=0.1)


class TestPrefetchAblation:
    def test_pagefault_controller_bottleneck(self, benchmark):
        auto = benchmark.pedantic(
            run_with_config,
            args=(
                "b&s",
                8_000_000,
                SchedulerConfig(prefetch=PrefetchPolicy.AUTO),
            ),
            rounds=1,
            iterations=1,
        )
        none = run_with_config(
            "b&s", 8_000_000,
            SchedulerConfig(prefetch=PrefetchPolicy.NONE),
        )
        slowdown = none.elapsed / auto.elapsed
        print(f"\nB&S without prefetch: {slowdown:.2f}x slower")
        assert slowdown > 1.3

    def test_unprefetched_parallel_still_beats_serial(self, benchmark):
        # "While still faster than the serial baseline, disabling
        # automatic prefetching is not recommended."
        none = benchmark.pedantic(
            run_with_config,
            args=(
                "vec",
                20_000_000,
                SchedulerConfig(prefetch=PrefetchPolicy.NONE),
            ),
            rounds=1,
            iterations=1,
        )
        serial = run_with_config(
            "vec", 20_000_000,
            SchedulerConfig(execution=ExecutionPolicy.SERIAL),
        )
        assert none.elapsed < serial.elapsed
