#!/usr/bin/env python3
"""Black & Scholes streaming — ten independent option chains (B&S).

Prices batches of European call options for ten stocks as they "arrive",
comparing how the three GPU generations handle ten fully independent
FP64 kernels: the consumer GTX 1660 is limited by its 1/32-rate FP64
units, while the Tesla P100 (1/2-rate FP64) finishes the math so fast it
hides entirely behind the PCIe transfers — reproducing the paper's
section V-F analysis of this benchmark.

Run:  python examples/options_streaming.py
"""

from repro.metrics import compute_overlaps
from repro.workloads import Mode, create_benchmark
from repro.workloads.bs import black_scholes_call
import numpy as np

BATCH = 100_000  # options per stock per batch
BATCHES = 4


def main() -> None:
    # Functional sanity first: one closed-form price.
    spot = np.array([30.0])
    print(
        f"BS(call, S=30, K=30, r=2%, sigma=30%, T=1) ="
        f" {black_scholes_call(spot)[0]:.4f}\n"
    )

    print(f"{BATCHES} batches x 10 stocks x {BATCH:,} options (float64)\n")
    print(f"{'GPU':16s} {'serial':>10s} {'parallel':>10s} {'speedup':>8s}"
          f" {'CT%':>6s} {'CC%':>6s}")
    for gpu in ("GTX 960", "GTX 1660 Super", "Tesla P100"):
        serial = create_benchmark(
            "b&s", BATCH, iterations=BATCHES, execute=False
        ).run(gpu, Mode.SERIAL)
        parallel = create_benchmark(
            "b&s", BATCH, iterations=BATCHES, execute=False
        ).run(gpu, Mode.PARALLEL)
        m = compute_overlaps(parallel.timeline).as_percentages()
        print(
            f"{gpu:16s} {serial.elapsed * 1e3:8.1f}ms"
            f" {parallel.elapsed * 1e3:8.1f}ms"
            f" {serial.elapsed / parallel.elapsed:7.2f}x"
            f" {m['CT']:6.1f} {m['CC']:6.1f}"
        )

    print(
        "\nReading the table: every GPU overlaps the ten chains (CC),"
        "\nbut only the P100's fast FP64 units let the computation hide"
        "\nbehind the transfers (high CT) — hence its bigger speedup."
    )


if __name__ == "__main__":
    main()
