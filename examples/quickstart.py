#!/usr/bin/env python3
"""Quickstart — the paper's Fig. 4 VEC program, line for line.

Demonstrates the core promise of the runtime: write host code *as if it
were sequential* — no streams, no events, no synchronization — and the
scheduler infers the dependency DAG, overlaps what can overlap, and
synchronizes exactly when the host consumes a result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Session
from repro.kernels import LinearCostModel
from repro.lang import Polyglot

N = 1_000_000
NUM_BLOCKS = 512
NUM_THREADS = 256


# The "CUDA kernels": functional numpy implementations, each paired with
# a roofline cost profile so the simulated GPU charges realistic time.
def K1_CODE(x, n):
    """__global__ square(float* x, int n) { x[i] = x[i] * x[i]; }"""
    np.square(x[:n], out=x[:n])


def K2_CODE(x, y, z, n):
    """__global__ sum(const float* x, const float* y, float* z, int n)"""
    z[0] = float(np.sum(x[:n] - y[:n], dtype=np.float64))


MEMORY_BOUND = LinearCostModel(
    flops_per_item=1.0, dram_bytes_per_item=8.0, instructions_per_item=4.0
)


def main() -> None:
    # A polyglot session on a simulated Tesla P100 (parallel scheduler
    # is the default — the serial baseline, a multi-GPU fleet, or any
    # movement/placement policy are one config flag away).
    rt = Session(gpus=1, gpu="Tesla P100")
    polyglot = Polyglot(rt)

    # -- Fig. 4, step A: declare kernels ------------------------------
    buildkernel = polyglot.eval("grcuda", "buildkernel")
    K1 = buildkernel(K1_CODE, "square", "ptr, sint32", MEMORY_BOUND)
    K2 = buildkernel(
        K2_CODE, "sum", "const ptr, const ptr, ptr, sint32", MEMORY_BOUND
    )

    # -- Fig. 4, step B: declare arrays --------------------------------
    X = polyglot.eval("grcuda", "float[{}]".format(N))
    Y = polyglot.eval("grcuda", "float[{}]".format(N))
    Z = polyglot.eval("grcuda", "float[1]")

    # [init arrays...] — plain host writes through the UM hook.
    X.copy_from_host(np.full(N, 2.0, dtype=np.float32))
    Y.copy_from_host(np.full(N, 3.0, dtype=np.float32))

    # -- Fig. 4, step C: launch, sequentially-looking host code --------
    K1(NUM_BLOCKS, NUM_THREADS)(X, N)   # -> stream 1 (async)
    K1(NUM_BLOCKS, NUM_THREADS)(Y, N)   # -> stream 2 (independent!)
    K2(NUM_BLOCKS, NUM_THREADS)(X, Y, Z, N)  # joins both, X/Y read-only

    # -- Fig. 4, step D: the CPU access synchronizes just enough -------
    res = Z[0]
    print(f"sum(x^2 - y^2) = {res:.1f}   (expected {N * (4.0 - 9.0):.1f})")

    # What the scheduler did behind the sequential-looking code:
    print(f"\nsimulated device time: {rt.elapsed() * 1e3:.3f} ms")
    print(f"inferred DAG: {rt.dag.num_vertices} vertices,"
          f" {rt.dag.num_edges} dependencies")
    print("\nexecution timeline:")
    print(rt.timeline().render_ascii(width=90))


if __name__ == "__main__":
    main()
