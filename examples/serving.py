#!/usr/bin/env python3
"""Serving — two tenants with different priorities share a 2-GPU fleet.

The paper's scheduler extracts parallelism from one host program; the
``repro.serve`` layer multiplexes *many clients* over a pool of
``repro.Session`` s (one long-lived session per GPU).  Here a premium
tenant and a batch tenant submit the same mixed workloads; the priority
admission policy — carried, like placement and movement, in the one
``SchedulerConfig`` — serves the premium tenant first, which shows up
directly in the per-tenant latency percentiles, while every result stays
bit-identical to running each graph alone on a private session.

Run:  python examples/serving.py
"""

import numpy as np

from repro import AdmissionPolicy, SchedulerConfig
from repro.serve import SchedulerService, ServeConfig, execute_serial
from repro.serve.workloads import mixed_workload_graphs

REQUESTS_PER_TENANT = 8


def main() -> None:
    # Admission is a SchedulerConfig knob like every other policy; the
    # serving layer builds one session per fleet GPU from this config.
    service = SchedulerService(
        fleet_size=2,                       # two simulated GTX 1660s
        config=ServeConfig(
            scheduler=SchedulerConfig(admission=AdmissionPolicy.PRIORITY),
        ),
    )
    service.register_tenant("premium", priority=10)
    service.register_tenant("batch", priority=0)

    # Both tenants submit the same mix of suite workloads (vec / B&S /
    # ML ensemble iterations), all present at t=0 so admission order is
    # decided purely by policy.
    graphs = mixed_workload_graphs(2 * REQUESTS_PER_TENANT, seed=21)
    submitted = []
    for i, graph in enumerate(graphs):
        tenant = "premium" if i % 2 == 0 else "batch"
        submitted.append((service.submit(tenant, graph), graph))

    report = service.run()
    print(report.render())

    # The premium tenant's requests were admitted first.
    m = report.metrics
    assert m.per_tenant["premium"].p50 < m.per_tenant["batch"].p50

    # Multi-tenant sharing never changes anyone's numbers: every request
    # matches a private serial-runtime execution of the same graph.
    by_id = {r.request_id: r for r in report.results}
    for request_id, graph in submitted:
        reference = execute_serial(graph)
        for name, expected in reference.items():
            assert np.array_equal(by_id[request_id].outputs[name], expected)
    print(
        f"\npremium p50 {m.per_tenant['premium'].p50 * 1e3:.2f} ms vs"
        f" batch p50 {m.per_tenant['batch'].p50 * 1e3:.2f} ms;"
        f" all {len(submitted)} results identical to serial execution"
    )


if __name__ == "__main__":
    main()
