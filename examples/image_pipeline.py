#!/usr/bin/env python3
"""Image-processing pipeline — the paper's IMG benchmark end to end.

Processes a real (synthetic) image through the 11-kernel, 4-stream
pipeline of Fig. 6 with *functional execution on*: the output image is
numerically validated against a straight-line numpy composition, proving
the scheduler reordered work without changing results.

Run:  python examples/image_pipeline.py
"""

import numpy as np

from repro.core.race import check_no_races
from repro.workloads import Mode, create_benchmark

SIDE = 256
GPU = "Tesla P100"


def main() -> None:
    print(f"IMG pipeline, {SIDE}x{SIDE} image on a simulated {GPU}")
    print("(blur x3, sobel x2, min/max/extend, unsharpen, combine x2)\n")

    results = {}
    for mode in (Mode.SERIAL, Mode.PARALLEL, Mode.HANDTUNED):
        bench = create_benchmark("img", SIDE, iterations=2, execute=True)
        run = bench.run(GPU, mode)
        results[mode] = run
        expected = [bench.reference(i) for i in range(bench.iterations)]
        ok = all(
            abs(a - b) <= 1e-3 * max(1.0, abs(b))
            for a, b in zip(run.results, expected)
        )
        print(
            f"  {mode.value:20s} {run.elapsed * 1e3:8.2f} ms"
            f"  streams={run.stream_count}"
            f"  results {'VALID' if ok else 'BROKEN'}"
        )

    check_no_races(results[Mode.PARALLEL].timeline)
    print("\nrace detector: no conflicting kernel overlaps found")

    speedup = (
        results[Mode.SERIAL].elapsed / results[Mode.PARALLEL].elapsed
    )
    print(f"parallel-scheduler speedup over serial: {speedup:.2f}x")

    ht = results[Mode.HANDTUNED].elapsed
    auto = results[Mode.PARALLEL].elapsed
    print(
        f"automatic scheduling vs hand-tuned events: {ht / auto:.2f}x"
        " (>= 1.0 means the automatic scheduler matched the expert)"
    )

    print("\nparallel timeline (4 streams, cf. Fig. 6):")
    print(results[Mode.PARALLEL].timeline.render_ascii(width=100))


if __name__ == "__main__":
    main()
