#!/usr/bin/env python3
"""Scheduling-policy tour — every knob of section IV-C on one workload.

Runs the HITS benchmark under each policy combination and shows how the
choices the paper discusses (stream reuse, parent-stream inheritance,
prefetching) move the execution time and the stream count.

Run:  python examples/scheduling_policies.py
"""

from repro import (
    ExecutionPolicy,
    NewStreamPolicy,
    ParentStreamPolicy,
    PrefetchPolicy,
    SchedulerConfig,
)
from repro import Session
from repro.workloads import Mode, create_benchmark
from repro.workloads.base import Benchmark

SCALE = 2_000_000
GPU = "GTX 1660 Super"


def run_config(label: str, config: SchedulerConfig):
    bench = create_benchmark("hits", SCALE, iterations=3, execute=False)
    original = Benchmark._build_session
    Benchmark._build_session = (
        lambda self, gpu, execution, prefetch, movement=None,
        gpus=1, placement=None, **knobs: Session(gpu=gpu, config=config)
    )
    try:
        result = bench.run(GPU, Mode.PARALLEL)
    finally:
        Benchmark._build_session = original
    print(
        f"  {label:44s} {result.elapsed * 1e3:8.1f} ms"
        f"   streams={result.stream_count}"
    )
    return result


def main() -> None:
    print(f"HITS ({SCALE:,} vertices) on a simulated {GPU}\n")

    print("execution policy:")
    serial = run_config(
        "SERIAL (original GrCUDA)",
        SchedulerConfig(execution=ExecutionPolicy.SERIAL),
    )
    parallel = run_config(
        "PARALLEL (this paper)",
        SchedulerConfig(execution=ExecutionPolicy.PARALLEL),
    )
    print(f"  -> speedup {serial.elapsed / parallel.elapsed:.2f}x\n")

    print("parent-stream policy (parallel scheduler):")
    run_config(
        "DISJOINT (first child inherits)",
        SchedulerConfig(parent_stream=ParentStreamPolicy.DISJOINT),
    )
    run_config(
        "SAME_AS_PARENT (all children on one stream)",
        SchedulerConfig(parent_stream=ParentStreamPolicy.SAME_AS_PARENT),
    )

    print("\nnew-stream policy:")
    run_config(
        "FIFO (reuse free streams)",
        SchedulerConfig(new_stream=NewStreamPolicy.FIFO),
    )
    run_config(
        "ALWAYS_NEW",
        SchedulerConfig(new_stream=NewStreamPolicy.ALWAYS_NEW),
    )

    print("\nprefetch policy:")
    run_config(
        "AUTO (scheduler prefetches, recommended)",
        SchedulerConfig(prefetch=PrefetchPolicy.AUTO),
    )
    run_config(
        "NONE (page faults; the paper advises against)",
        SchedulerConfig(prefetch=PrefetchPolicy.NONE),
    )


if __name__ == "__main__":
    main()
