#!/usr/bin/env python3
"""Block-size auto-tuning from execution history (section-VI heuristic).

The runtime records every kernel execution (section IV-A: "we track each
kernel's historical performance").  This example probes a compute-bound
kernel at several block sizes, then asks the history for the recommended
configuration — the paper's future-work idea of "estimating the ideal
block size based on data size and previous executions".

Run:  python examples/autotuning.py
"""

from repro import Session
from repro.kernels import LinearCostModel

N = 1 << 22
BLOCK_CANDIDATES = (32, 64, 128, 256, 512, 1024)

# A compute-bound kernel: small blocks under-occupy the GPU and pay for
# it; memory-bound kernels would be insensitive (try it!).
COMPUTE_BOUND = LinearCostModel(
    flops_per_item=400.0,
    dram_bytes_per_item=4.0,
    instructions_per_item=120.0,
)


def main() -> None:
    rt = Session(gpu="Tesla P100")
    kernel = rt.build_kernel(
        lambda x, n: None, "simulate", "ptr, sint32", COMPUTE_BOUND
    )
    x = rt.array(N, name="x", materialize=False)

    print(f"probing 'simulate' over {N:,} elements on a simulated P100\n")
    print(f"{'block size':>10s} {'duration':>12s}")
    for block in BLOCK_CANDIDATES:
        kernel(512, block)(x, N)
        rt.sync()
        ms = rt.history.mean_duration("simulate", block) * 1e3
        print(f"{block:>10d} {ms:>10.3f} ms")

    best = rt.history.recommend_block_size("simulate", x.nbytes)
    print(f"\nhistory recommends block size: {best}")
    print(
        "(512 blocks x 1024 threads saturate the P100's"
        f" {rt.spec.max_resident_threads:,} resident threads;"
        " smaller blocks leave SMs idle)"
    )

    summary = rt.history.summary()["simulate"]
    print(
        f"\nhistory: {summary['executions']:.0f} executions,"
        f" best {summary['best_ms']:.3f} ms,"
        f" mean {summary['mean_ms']:.3f} ms"
    )


if __name__ == "__main__":
    main()
