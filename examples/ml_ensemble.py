#!/usr/bin/env python3
"""ML ensemble — the paper's motivating pipeline (Figs. 2 and 10).

Runs the two-branch classifier ensemble (Naive Bayes + Ridge Regression)
under both schedulers, shows the inferred DAG, the two-stream execution
timeline with its transfer/compute overlaps, and the speedup.

Run:  python examples/ml_ensemble.py
"""

from repro.metrics import compute_overlaps
from repro.workloads import Mode, create_benchmark

SCALE = 200_000  # rows; 200 features, 10 classes (the paper's shape)
GPU = "GTX 1660 Super"


def main() -> None:
    serial = create_benchmark(
        "ml", SCALE, iterations=3, execute=False
    ).run(GPU, Mode.SERIAL)

    bench = create_benchmark("ml", SCALE, iterations=3, execute=False)
    parallel = bench.run(GPU, Mode.PARALLEL)

    print(f"ML ensemble on a simulated {GPU}, {SCALE:,} rows x 200 features")
    print(f"  serial scheduler   : {serial.elapsed * 1e3:9.2f} ms")
    print(f"  parallel scheduler : {parallel.elapsed * 1e3:9.2f} ms")
    print(f"  speedup            : {serial.elapsed / parallel.elapsed:9.2f}x")
    print(f"  streams used       : {parallel.stream_count}"
          " (one per classifier branch, as in Fig. 2)")

    overlaps = compute_overlaps(parallel.timeline).as_percentages()
    print("\noverlap analysis (section V-F):")
    for kind, pct in overlaps.items():
        print(f"  {kind:3s} overlap: {pct:5.1f} %")

    print("\nexecution timeline (Fig. 10):")
    print(parallel.timeline.render_ascii(width=100))

    # The scheduler inferred the Fig. 2 DAG automatically — show the
    # dependency edges of one iteration, labelled with the array that
    # caused each one (the edge labels of Fig. 2).
    one_iter = create_benchmark("ml", SCALE, iterations=1, execute=False)
    from repro import SchedulerConfig, Session  # session-owned DAG

    rt = Session(gpu=GPU, config=SchedulerConfig())
    arrays = {
        name: rt.array(s.shape, dtype=s.dtype, name=name, materialize=False)
        for name, s in one_iter.array_specs().items()
    }
    kernels = {
        k.name: rt.build_kernel(lambda *a: None, k.name, k.signature, k.cost)
        for k in one_iter.kernel_specs()
    }
    one_iter.refresh(arrays, 0)
    for inv in one_iter.invocations():
        args = tuple(
            arrays[a] if isinstance(a, str) else a for a in inv.args
        )
        kernels[inv.kernel](inv.grid, inv.block)(*args)
    rt.sync()
    print("\ninferred dependencies (one iteration):")
    for edge in rt.dag.edges:
        if edge.parent.is_kernel and edge.child.is_kernel:
            print(
                f"  {edge.parent.label:10s} -> {edge.child.label:10s}"
                f"  via {edge.array.name}"
            )


if __name__ == "__main__":
    main()
