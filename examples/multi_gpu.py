#!/usr/bin/env python3
"""Multi-GPU scheduling — the paper's section-VI future work, realized.

"We plan to extend our technique to multiple GPUs: the problem is
significantly harder, as it requires to compute data location and
migration costs at run time to identify the optimal scheduling."

This example runs two workload shapes on 1, 2 and 4 simulated GPUs and
compares the naive round-robin placement against the locality-aware
(min-transfer) policy the paper calls for.  The device count is just the
``gpus=`` argument of ``Session`` — the host program is identical for
every fleet size.

Run:  python examples/multi_gpu.py
"""

from repro import DevicePlacementPolicy, SchedulerConfig, Session
from repro.gpusim.timeline import IntervalKind
from repro.kernels import LinearCostModel

N = 1 << 22
COST = LinearCostModel(
    flops_per_item=800.0,
    dram_bytes_per_item=8.0,
    instructions_per_item=150.0,
)


def independent_batches(n_gpus: int, policy) -> float:
    """Eight independent pipelines — embarrassingly device-parallel."""
    sess = Session(
        gpus=n_gpus, gpu="1660",
        config=SchedulerConfig(placement=policy),
    )
    k = sess.build_kernel(lambda x, n: None, "work", "ptr, sint32", COST)
    arrays = [
        sess.array(N, name=f"batch{i}", materialize=False)
        for i in range(8)
    ]
    for a in arrays:
        a.touch_write_full()
    for _ in range(2):
        for a in arrays:
            k(512, 256)(a, N)
    sess.sync()
    return sess.elapsed()


def dependent_chain(policy) -> tuple[float, int]:
    """One 8-kernel chain on one array — placement is all about data
    location; returns (time, peer-to-peer transfer count)."""
    sess = Session(gpus=2, gpu="1660",
                   config=SchedulerConfig(placement=policy))
    k = sess.build_kernel(lambda x, n: None, "step", "ptr, sint32", COST)
    a = sess.array(N, name="chain", materialize=False)
    a.touch_write_full()
    for _ in range(8):
        k(512, 256)(a, N)
    sess.sync()
    d2d = sum(
        1
        for r in sess.timeline()
        if r.kind is IntervalKind.TRANSFER_D2D
    )
    return sess.elapsed(), d2d


def main() -> None:
    print("Independent batches (8 pipelines), min-transfer placement:")
    for n in (1, 2, 4):
        t = independent_batches(n, DevicePlacementPolicy.MIN_TRANSFER)
        print(f"  {n} x GTX 1660 Super: {t * 1e3:8.1f} ms")

    print("\nDependent 8-kernel chain on 2 GPUs (placement matters!):")
    for policy in (
        DevicePlacementPolicy.ROUND_ROBIN,
        DevicePlacementPolicy.MIN_TRANSFER,
    ):
        t, d2d = dependent_chain(policy)
        print(
            f"  {policy.value:13s}: {t * 1e3:8.1f} ms,"
            f" {d2d} peer-to-peer copies"
        )
    print(
        "\nRound-robin ping-pongs the chain's data between GPUs;"
        "\nthe min-transfer policy computes migration costs at run time"
        "\nand keeps the chain where its data lives."
    )


if __name__ == "__main__":
    main()
